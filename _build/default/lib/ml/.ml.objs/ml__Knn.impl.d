lib/ml/knn.ml: Array Dataset Hashtbl List Option
