(** Categorical datasets for the shallow-ML baselines: string feature
    vectors plus a class label. *)

type instance = { features : string array; label : string }

type t = {
  feature_names : string array;
  instances : instance list;
}

val make : feature_names:string array -> instance list -> t
val size : t -> int
val labels : t -> string list
val feature_values : t -> int -> string list

(** Deterministic pseudo-random shuffle. *)
val shuffle : seed:int -> t -> t

(** First [n] instances / the rest. *)
val split_at : int -> t -> t * t

val take : int -> t -> t
val majority_label : t -> string option
