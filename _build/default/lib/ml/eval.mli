(** Classifier evaluation: accuracy and learning curves. *)

type classifier = { name : string; train : Dataset.t -> string array -> string }

val decision_tree : classifier
val naive_bayes : classifier
val knn : ?k:int -> unit -> classifier
val majority_class : classifier
val accuracy : (string array -> string) -> Dataset.t -> float

(** Accuracy on [test] after training on the first [n] of [train], for
    each [n] in [sizes]. *)
val learning_curve :
  classifier ->
  train:Dataset.t ->
  test:Dataset.t ->
  sizes:int list ->
  (int * float) list
