(** Controlled-English intents compiled into generative policy models —
    the "from natural language to grammar-based policies" direction of
    Section III-B.

    {v
      the options are accept or reject.
      never accept when weather is snow and task is overtake.
      never accept when vehicle_loa is below needed_loa.
      penalize reject by 1.
      prefer accept over reject.
    v} *)

exception Intent_error of string

type statement =
  | Options of string list
  | Forbid of string * Asg.Annotation.body_elt list
  | Penalize of string * int * Asg.Annotation.body_elt list

(** Parse period-separated statements.
    @raise Intent_error on unrecognized phrasing. *)
val parse : string -> statement list

(** Compile intents into a GPM; requires exactly one options statement.
    @raise Intent_error on unknown options or malformed statements. *)
val compile : string -> Asg.Gpm.t

(** The compiled constraints, rendered for operator review. *)
val describe : Asg.Gpm.t -> string list
