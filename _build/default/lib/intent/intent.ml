(** Controlled-English intents → generative policy models.

    The paper's Section III-B identifies "from natural language to
    grammar-based policies" as a research direction: end users state
    policies in natural language, and these must become the grammars and
    constraints of the generative framework. This module implements a
    template-based compiler for a controlled English fragment:

    {v
      the options are accept or reject.
      never accept when weather is snow and task is overtake.
      never accept when vehicle_loa is below needed_loa.
      penalize reject by 1.
      prefer accept over reject.            (same as penalizing reject)
    v}

    Each statement ends with a period. [the options are ...] fixes the
    decision grammar; [never OPTION when COND and COND ...] compiles to
    an ASG constraint; [penalize OPTION by N [when COND ...]] compiles to
    a weak constraint (a utility statement). Conditions:

    - [ATTR is VALUE]                ->  attr-value context fact
    - [ATTR is below ATTR']          ->  numeric comparison  V < V'
    - [ATTR is at least N]           ->  V >= N
    - [ATTR is at most N]            ->  V <= N *)

exception Intent_error of string

type statement =
  | Options of string list
  | Forbid of string * Asg.Annotation.body_elt list  (** option, conditions *)
  | Penalize of string * int * Asg.Annotation.body_elt list

let tokenize text =
  text
  |> String.lowercase_ascii
  |> String.map (fun c -> if c = ',' then ' ' else c)
  |> String.split_on_char ' '
  |> List.filter (fun w -> w <> "" && w <> "the")

let split_statements text =
  String.split_on_char '.' text
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

(* A condition over the context. Returns the body literals plus a counter
   for fresh comparison variables. *)
let rec parse_conditions fresh tokens :
    Asg.Annotation.body_elt list =
  let var () =
    incr fresh;
    Printf.sprintf "V%d" !fresh
  in
  let attr_atom name v = Asp.Atom.make name [ v ] in
  match tokens with
  | [] -> []
  | attr :: "is" :: "below" :: attr' :: rest ->
    let v1 = var () and v2 = var () in
    Asg.Annotation.Pos (Asg.Annotation.at (attr_atom attr (Asp.Term.var v1)))
    :: Asg.Annotation.Pos (Asg.Annotation.at (attr_atom attr' (Asp.Term.var v2)))
    :: Asg.Annotation.Cmp (Asp.Rule.Lt, Asp.Term.var v1, Asp.Term.var v2)
    :: continue fresh rest
  | attr :: "is" :: "at" :: "least" :: n :: rest ->
    let v = var () in
    let k =
      match int_of_string_opt n with
      | Some k -> k
      | None -> raise (Intent_error ("expected a number, found " ^ n))
    in
    Asg.Annotation.Pos (Asg.Annotation.at (attr_atom attr (Asp.Term.var v)))
    :: Asg.Annotation.Cmp (Asp.Rule.Ge, Asp.Term.var v, Asp.Term.int k)
    :: continue fresh rest
  | attr :: "is" :: "at" :: "most" :: n :: rest ->
    let v = var () in
    let k =
      match int_of_string_opt n with
      | Some k -> k
      | None -> raise (Intent_error ("expected a number, found " ^ n))
    in
    Asg.Annotation.Pos (Asg.Annotation.at (attr_atom attr (Asp.Term.var v)))
    :: Asg.Annotation.Cmp (Asp.Rule.Le, Asp.Term.var v, Asp.Term.int k)
    :: continue fresh rest
  | attr :: "is" :: "not" :: value :: rest ->
    Asg.Annotation.Neg (Asg.Annotation.at (attr_atom attr (Asp.Term.const value)))
    :: continue fresh rest
  | attr :: "is" :: value :: rest ->
    (match int_of_string_opt value with
    | Some k ->
      Asg.Annotation.Pos (Asg.Annotation.at (attr_atom attr (Asp.Term.int k)))
    | None ->
      Asg.Annotation.Pos (Asg.Annotation.at (attr_atom attr (Asp.Term.const value))))
    :: continue fresh rest
  | w :: _ -> raise (Intent_error ("cannot parse condition near " ^ w))

and continue fresh = function
  | [] -> []
  | "and" :: rest -> parse_conditions fresh rest
  | w :: _ -> raise (Intent_error ("expected 'and' but found " ^ w))

let parse_statement (s : string) : statement =
  let fresh = ref 0 in
  match tokenize s with
  | "options" :: "are" :: rest ->
    let opts = List.filter (fun w -> w <> "or" && w <> "and") rest in
    if opts = [] then raise (Intent_error "no options listed");
    Options opts
  | ("never" | "forbid") :: option_ :: rest ->
    let conds =
      match rest with
      | [] -> []
      | "when" :: conds -> parse_conditions fresh conds
      | w :: _ -> raise (Intent_error ("expected 'when' but found " ^ w))
    in
    Forbid (option_, conds)
  | "penalize" :: option_ :: "by" :: n :: rest ->
    let weight =
      match int_of_string_opt n with
      | Some k -> k
      | None -> raise (Intent_error ("expected a number, found " ^ n))
    in
    let conds =
      match rest with
      | [] -> []
      | "when" :: conds -> parse_conditions fresh conds
      | w :: _ -> raise (Intent_error ("expected 'when' but found " ^ w))
    in
    Penalize (option_, weight, conds)
  | "prefer" :: preferred :: "over" :: other :: [] ->
    ignore preferred;
    Penalize (other, 1, [])
  | w :: _ -> raise (Intent_error ("cannot parse statement starting with " ^ w))
  | [] -> raise (Intent_error "empty statement")

let parse (text : string) : statement list =
  List.map parse_statement (split_statements text)

(** The decision literal for an option: [result(option)@1]. *)
let decision_literal option_ =
  Asg.Annotation.Pos
    {
      Asg.Annotation.atom = Asp.Atom.make "result" [ Asp.Term.const option_ ];
      site = Some 1;
    }

(** Compile controlled-English intents into a generative policy model.
    The statements must include exactly one [the options are ...]. *)
let compile (text : string) : Asg.Gpm.t =
  let statements = parse text in
  let options =
    match
      List.filter_map (function Options o -> Some o | _ -> None) statements
    with
    | [ opts ] -> opts
    | [] -> raise (Intent_error "missing 'the options are ...' statement")
    | _ -> raise (Intent_error "multiple 'the options are ...' statements")
  in
  let cfg =
    Grammar.Cfg.make ~start:"start"
      (("start", [ Grammar.Symbol.nonterminal "decision" ])
      :: List.map
           (fun opt -> ("decision", [ Grammar.Symbol.terminal opt ]))
           options)
  in
  let option_annotations =
    List.mapi
      (fun i opt ->
        ( i + 1,
          [ Asg.Annotation.fact (Asp.Atom.make "result" [ Asp.Term.const opt ]) ] ))
      options
  in
  let check_option opt =
    if not (List.mem opt options) then
      raise (Intent_error (opt ^ " is not one of the declared options"))
  in
  let root_rules =
    List.filter_map
      (function
        | Options _ -> None
        | Forbid (opt, conds) ->
          check_option opt;
          Some
            { Asg.Annotation.head = Asg.Annotation.Falsity;
              body = decision_literal opt :: conds }
        | Penalize (opt, weight, conds) ->
          check_option opt;
          Some
            { Asg.Annotation.head = Asg.Annotation.Weak (Asp.Term.int weight);
              body = decision_literal opt :: conds })
      statements
  in
  let annotations =
    (if root_rules = [] then [] else [ (0, root_rules) ]) @ option_annotations
  in
  Asg.Gpm.make ~annotations cfg

(** Render the compiled model's constraints back as text (for review). *)
let describe (gpm : Asg.Gpm.t) : string list =
  List.map Asg.Annotation.rule_to_string (Asg.Gpm.annotation gpm 0)
