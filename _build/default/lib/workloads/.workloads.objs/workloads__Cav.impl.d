lib/workloads/cav.ml: Asg Asp Ilp List Ml Printf Util
