lib/workloads/data_sharing.mli: Asg Asp Ilp
