lib/workloads/resupply.mli: Asg Asp Ilp Random
