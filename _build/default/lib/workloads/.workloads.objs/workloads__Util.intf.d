lib/workloads/util.mli: Asp Random
