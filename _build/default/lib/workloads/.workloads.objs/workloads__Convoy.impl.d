lib/workloads/convoy.ml: Asg Asp Fun Ilp List Printf String Util
