lib/workloads/federated.ml: Asg Asp Ilp List Printf Util
