lib/workloads/util.ml: Asp List Random String
