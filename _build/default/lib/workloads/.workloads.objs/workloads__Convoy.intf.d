lib/workloads/convoy.mli: Asg Asp Ilp
