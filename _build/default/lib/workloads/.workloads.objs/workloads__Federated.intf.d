lib/workloads/federated.mli: Asg Asp Ilp
