lib/workloads/xacml_logs.ml: Asg Asp Attribute Expr Ilp List Policy Printf Rule_policy String Util
