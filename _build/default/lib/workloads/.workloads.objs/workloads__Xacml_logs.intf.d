lib/workloads/xacml_logs.mli: Asg Ilp Policy
