lib/workloads/data_sharing.ml: Asg Asp Ilp List Printf Util
