lib/workloads/cav.mli: Asg Asp Ilp Ml
