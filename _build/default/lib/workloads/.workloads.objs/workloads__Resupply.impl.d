lib/workloads/resupply.ml: Asg Asp Fun Ilp List Option Printf Util
