(** The coalition data-sharing scenario (Section IV-D): given a partner's
    trust level and a data item's quality and value, decide between
    sharing raw data, sharing through the redaction helper microservice,
    or refusing. The "helper microservice" choice is exactly the
    share_redacted option — the learner learns which service applies in
    which context, as the paper suggests. *)

type item = {
  trust : int;  (** partner trust 1..5 *)
  quality : int;  (** data quality 1..5 *)
  value : int;  (** data value 1..5 — distractor for raw sharing *)
  kind : string;  (** image | signal | document *)
}

let kinds = [ "image"; "signal"; "document" ]
let options = [ "share_raw"; "share_redacted"; "refuse" ]

(** Ground truth validity per option. *)
let option_valid (i : item) = function
  | "share_raw" -> i.trust >= 4 && i.quality >= 3
  | "share_redacted" -> i.trust >= 2
  | "refuse" -> true
  | _ -> false

(** Preferred decision: the most permissive valid option. *)
let ground_truth_choice (i : item) : string =
  if option_valid i "share_raw" then "share_raw"
  else if option_valid i "share_redacted" then "share_redacted"
  else "refuse"

let sample_item st : item =
  {
    trust = Util.pick_int st 1 5;
    quality = Util.pick_int st 1 5;
    value = Util.pick_int st 1 5;
    kind = Util.pick st kinds;
  }

let sample ~seed n : item list = Util.sample (Util.rng seed) n sample_item

let to_context (i : item) : Asp.Program.t =
  Util.facts_program
    [
      Printf.sprintf "trust(%d)." i.trust;
      Printf.sprintf "quality(%d)." i.quality;
      Printf.sprintf "value(%d)." i.value;
      Printf.sprintf "kind(%s)." i.kind;
    ]

let gpm () : Asg.Gpm.t =
  Asg.Asg_parser.parse
    {| start -> action
       action -> "share_raw" { act(share_raw). }
               | "share_redacted" { act(share_redacted). }
               | "refuse" { act(refuse). } |}

let modes ?(max_body = 2) () : Ilp.Mode.t =
  Ilp.Mode.make ~target_prods:[ 0 ] ~heads:[ Ilp.Mode.Constraint ]
    ~bodies:
      [
        Ilp.Mode.matom ~required:true ~site:(Some 1) "act"
          [ Ilp.Mode.Constants [ "share_raw"; "share_redacted" ] ];
        Ilp.Mode.matom "trust" [ Ilp.Mode.Variable "t" ];
        Ilp.Mode.matom "quality" [ Ilp.Mode.Variable "q" ];
        Ilp.Mode.matom "kind" [ Ilp.Mode.Constants kinds ];
      ]
    ~cmps:
      [
        (Asp.Rule.Lt, "t", Ilp.Mode.IntOperand 2);
        (Asp.Rule.Lt, "t", Ilp.Mode.IntOperand 4);
        (Asp.Rule.Lt, "q", Ilp.Mode.IntOperand 3);
      ]
    ~max_body ()

(** Per-option validity examples for a batch of items. *)
let examples_of (items : item list) : Ilp.Example.t list =
  List.concat_map
    (fun i ->
      let context = to_context i in
      List.map
        (fun opt ->
          if option_valid i opt then Ilp.Example.positive ~context opt
          else Ilp.Example.negative ~context opt)
        options)
    items

(** Decide with a learned GPM: most permissive valid option. *)
let decide (g : Asg.Gpm.t) (i : item) : string =
  let context = to_context i in
  let valid opt = Asg.Membership.accepts_in_context g ~context opt in
  if valid "share_raw" then "share_raw"
  else if valid "share_redacted" then "share_redacted"
  else "refuse"

let gpm_accuracy (g : Asg.Gpm.t) (test : item list) : float =
  match test with
  | [] -> 1.0
  | _ ->
    let correct =
      List.length
        (List.filter (fun i -> decide g i = ground_truth_choice i) test)
    in
    float_of_int correct /. float_of_int (List.length test)
