(** The connected-and-autonomous-vehicle scenario (Section IV-A, after
    Cunnington et al.): a CAV decides whether a request to execute a
    driving task should be accepted or rejected given the environmental
    conditions and the levels of autonomy (LOA) of the vehicle, region and
    task.

    The hidden ground-truth policy (what the paper's field setting would
    provide) is: accept iff the vehicle's LOA reaches the task's required
    LOA, except that overtaking is forbidden in snow and any task is
    forbidden in night-time fog. The generative policy model must recover
    these as ASG constraints; shallow ML baselines see the same data as
    feature vectors. *)

type scenario = {
  task : string;  (** turn | straight | overtake | park *)
  vehicle_loa : int;  (** 1..5 *)
  region_loa : int;  (** 1..5 — a distractor attribute *)
  weather : string;  (** clear | rain | snow | fog *)
  time : string;  (** day | night *)
}

let tasks = [ "turn"; "straight"; "overtake"; "park" ]
let weathers = [ "clear"; "rain"; "snow"; "fog" ]
let times = [ "day"; "night" ]

let required_loa = function
  | "turn" -> 2
  | "straight" -> 1
  | "overtake" -> 4
  | "park" -> 3
  | _ -> 5

(** Ground truth: may the task be accepted? *)
let ground_truth (s : scenario) : bool =
  s.vehicle_loa >= required_loa s.task
  && (not (s.weather = "snow" && s.task = "overtake"))
  && not (s.weather = "fog" && s.time = "night")

let sample_scenario st : scenario =
  {
    task = Util.pick st tasks;
    vehicle_loa = Util.pick_int st 1 5;
    region_loa = Util.pick_int st 1 5;
    weather = Util.pick st weathers;
    time = Util.pick st times;
  }

let sample ~seed n : scenario list =
  Util.sample (Util.rng seed) n sample_scenario

(** Every scenario (the full context space). *)
let all_scenarios () : scenario list =
  List.concat_map
    (fun task ->
      List.concat_map
        (fun vehicle_loa ->
          List.concat_map
            (fun region_loa ->
              List.concat_map
                (fun weather ->
                  List.map
                    (fun time ->
                      { task; vehicle_loa; region_loa; weather; time })
                    times)
                weathers)
            (List.init 5 (fun i -> i + 1)))
        (List.init 5 (fun i -> i + 1)))
    tasks

let to_context (s : scenario) : Asp.Program.t =
  Util.facts_program
    [
      Printf.sprintf "task(%s)." s.task;
      Printf.sprintf "vehicle_loa(%d)." s.vehicle_loa;
      Printf.sprintf "region_loa(%d)." s.region_loa;
      Printf.sprintf "weather(%s)." s.weather;
      Printf.sprintf "time(%s)." s.time;
    ]

(** The initial GPM: decision grammar plus background knowledge (the task
    LOA requirement table) in the root annotation. *)
let gpm () : Asg.Gpm.t =
  Asg.Asg_parser.parse
    {| start -> decision {
         task_req(turn, 2). task_req(straight, 1).
         task_req(overtake, 4). task_req(park, 3).
         needed_loa(R) :- task(T), task_req(T, R).
       }
       decision -> "accept" { result(accept). } | "reject" { result(reject). } |}

(** Mode bias: constraints on accepting, over the context vocabulary, LOA
    variables and threshold comparisons. *)
let modes ?(max_body = 3) () : Ilp.Mode.t =
  Ilp.Mode.make ~target_prods:[ 0 ] ~heads:[ Ilp.Mode.Constraint ]
    ~bodies:
      [
        Ilp.Mode.matom ~required:true ~site:(Some 1) "result" [ Ilp.Mode.Constants [ "accept" ] ];
        Ilp.Mode.matom "weather" [ Ilp.Mode.Constants weathers ];
        Ilp.Mode.matom "task" [ Ilp.Mode.Constants tasks ];
        Ilp.Mode.matom "time" [ Ilp.Mode.Constants times ];
        Ilp.Mode.matom "vehicle_loa" [ Ilp.Mode.Variable "v" ];
        Ilp.Mode.matom "needed_loa" [ Ilp.Mode.Variable "r" ];
      ]
    ~cmps:
      [
        (Asp.Rule.Lt, "v", Ilp.Mode.VarOperand "r");
        (Asp.Rule.Lt, "v", Ilp.Mode.IntOperand 3);
      ]
    ~max_body ()

(** Learning examples: the decision log labels "accept" as valid (positive)
    or invalid (negative); "reject" is the always-valid fallback, asserted
    positively so learned constraints must name the decision they forbid. *)
let examples_of (scenarios : scenario list) : Ilp.Example.t list =
  List.concat_map
    (fun s ->
      let context = to_context s in
      let accept_example =
        if ground_truth s then Ilp.Example.positive ~context "accept"
        else Ilp.Example.negative ~context "accept"
      in
      [ accept_example; Ilp.Example.positive ~context "reject" ])
    scenarios

(** Decide with a learned GPM: accept iff "accept" is a valid policy in
    the scenario's context. *)
let decide (g : Asg.Gpm.t) (s : scenario) : bool =
  Asg.Membership.accepts_in_context g ~context:(to_context s) "accept"

(** Decision accuracy of a GPM over scenarios, against the ground truth. *)
let gpm_accuracy (g : Asg.Gpm.t) (test : scenario list) : float =
  match test with
  | [] -> 1.0
  | _ ->
    let correct =
      List.length (List.filter (fun s -> decide g s = ground_truth s) test)
    in
    float_of_int correct /. float_of_int (List.length test)

(** The same data as a categorical dataset for the shallow-ML baselines. *)
let to_dataset (scenarios : scenario list) : Ml.Dataset.t =
  Ml.Dataset.make
    ~feature_names:[| "task"; "vehicle_loa"; "region_loa"; "weather"; "time" |]
    (List.map
       (fun s ->
         {
           Ml.Dataset.features =
             [|
               s.task;
               string_of_int s.vehicle_loa;
               string_of_int s.region_loa;
               s.weather;
               s.time;
             |];
           label = (if ground_truth s then "accept" else "reject");
         })
       scenarios)
