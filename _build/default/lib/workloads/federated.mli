(** The federated-learning scenario (Section IV-E): adopt, ensemble, or
    discard a partner's model based on trust, reported accuracy and
    domain match. *)

type offer = {
  trust : int;  (** 1..5 *)
  reported_accuracy : int;  (** 0..100, steps of 10 *)
  domain : string;  (** same | near | far *)
}

val domains : string list
val options : string list
val option_valid : offer -> string -> bool
val ground_truth_choice : offer -> string
val sample : seed:int -> int -> offer list
val to_context : offer -> Asp.Program.t
val gpm : unit -> Asg.Gpm.t
val modes : ?max_body:int -> unit -> Ilp.Mode.t
val examples_of : offer list -> Ilp.Example.t list
val decide : Asg.Gpm.t -> offer -> string
val gpm_accuracy : Asg.Gpm.t -> offer list -> float
