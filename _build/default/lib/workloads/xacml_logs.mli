(** The access-control case study (Section IV-C / Figure 3): synthetic
    conformance-shaped request/response logs with a hidden seniority-based
    ground truth, including the Figure-3b failure scenarios (sparse logs,
    role-sparse logs, noisy logs). *)

val roles : string list
val resources : string list
val actions : string list
val seniority : string -> int
val role_attr : Policy.Attribute.t
val resource_attr : Policy.Attribute.t
val action_attr : Policy.Attribute.t

val request :
  role:string -> resource:string -> action:string -> Policy.Request.t

val request_space : unit -> Policy.Request.t list
val ground_truth_decision : Policy.Request.t -> Policy.Decision.t

(** The ground truth as an explicit XACML-style policy. *)
val ground_truth_policy : unit -> Policy.Rule_policy.t

(** Clean uniform log. *)
val log : seed:int -> n:int -> unit -> (Policy.Request.t * Policy.Decision.t) list

(** Decision flips and NotApplicable ("irrelevant") injections. *)
val noisy_log :
  seed:int ->
  n:int ->
  flip:float ->
  irrelevant:float ->
  unit ->
  (Policy.Request.t * Policy.Decision.t) list

(** Only requests from [visible_roles] appear (overfitting scenario). *)
val sparse_log :
  seed:int ->
  n:int ->
  visible_roles:string list ->
  unit ->
  (Policy.Request.t * Policy.Decision.t) list

val vocabulary : unit -> (Policy.Attribute.t * string list) list

(** Flat (role-enumerating) mode bias. *)
val modes : ?max_body:int -> unit -> Ilp.Mode.t

val gpm : unit -> Asg.Gpm.t

(** GPM with the role hierarchy as background knowledge. *)
val gpm_with_hierarchy : unit -> Asg.Gpm.t

(** Mode bias with seniority thresholds instead of role enumeration. *)
val hierarchy_modes : ?max_body:int -> unit -> Ilp.Mode.t

val gpm_accuracy : Asg.Gpm.t -> Policy.Request.t list -> float
