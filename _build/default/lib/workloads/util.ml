(** Seeded sampling helpers shared by the scenario generators. All
    randomness is deterministic given the seed, so experiments are
    reproducible. *)

let rng seed = Random.State.make [| seed |]

let pick st xs =
  match xs with
  | [] -> invalid_arg "Util.pick: empty list"
  | _ -> List.nth xs (Random.State.int st (List.length xs))

let pick_int st lo hi = lo + Random.State.int st (hi - lo + 1)

let flip st p = Random.State.float st 1.0 < p

(** Sample [n] items with [f]. *)
let sample st n f = List.init n (fun _ -> f st)

let facts_program (facts : string list) : Asp.Program.t =
  Asp.Parser.parse_program (String.concat " " facts)
