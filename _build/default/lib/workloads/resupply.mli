(** The logistical-resupply scenario (Section IV-B): route selection under
    threat estimates, weather and risk appetite, across mission
    campaigns; plus a utility-based variant (weak constraints). *)

type mission = {
  threat_north : int;  (** 0..4 *)
  threat_south : int;
  threat_river : int;
  weather : string;  (** clear | rain | storm *)
  time : string;  (** day | night *)
  risk_appetite : string;  (** low | high *)
}

val routes : string list
val weathers : string list
val times : string list
val threat : mission -> string -> int
val max_threat_for : string -> int
val route_valid : mission -> string -> bool
val sample_mission : ?risk_appetite:string -> Random.State.t -> mission

(** [n] missions; appetite switches low→high at [shift_at]. *)
val campaign : seed:int -> n:int -> ?shift_at:int -> unit -> mission list

val to_context : mission -> Asp.Program.t
val gpm : unit -> Asg.Gpm.t
val modes : ?max_body:int -> unit -> Ilp.Mode.t
val examples_of_mission : mission -> Ilp.Example.t list

(** Valid route options a GPM offers. *)
val options : Asg.Gpm.t -> mission -> string list

val gpm_accuracy : Asg.Gpm.t -> mission list -> float

(** {2 Utility-based selection (policy type iii)} *)

(** Routes cost their threat; river at night costs 2 extra. *)
val utility_gpm : unit -> Asg.Gpm.t

val route_cost : mission -> string -> int
val best_route_oracle : mission -> string option
val best_route : Asg.Gpm.t -> mission -> string option

(** Fraction of missions with a cost-optimal valid pick. *)
val utility_accuracy : Asg.Gpm.t -> mission list -> float
