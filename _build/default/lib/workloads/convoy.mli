(** Convoy composition (Section IV-B): structured policy strings
    ("truck truck escort drone") whose unit counts are computed by
    recursive ASG annotations; learned root constraints relate the counts
    to the threat context (cargo requirement, escort ratio, recon
    drones). *)

val unit_kinds : string list

type composition = { trucks : int; escorts : int; drones : int }

type situation = {
  threat : int;  (** 0..4 *)
  composition : composition;
}

(** Deployable iff ≥1 truck; escorts ≥ trucks from threat 2; ≥1 drone
    from threat 3. *)
val valid : threat:int -> composition -> bool

val to_sentence : composition -> string
val context : threat:int -> Asp.Program.t

(** Unit-list grammar with structural counting; constraints learn on
    production 0. *)
val gpm : unit -> Asg.Gpm.t

val modes : ?max_body:int -> unit -> Ilp.Mode.t
val sample : seed:int -> int -> situation list

(** All compositions up to [max_units] per kind, crossed with threats. *)
val all_situations : ?max_units:int -> unit -> situation list

val examples_of : situation list -> Ilp.Example.t list
val accepts : Asg.Gpm.t -> situation -> bool
val gpm_accuracy : Asg.Gpm.t -> situation list -> float

(** The deployable convoys for a threat level (bounded size). *)
val deployable : ?max_depth:int -> Asg.Gpm.t -> threat:int -> string list
