(** The coalition data-sharing scenario (Section IV-D): share raw, share
    through the redaction service, or refuse, based on partner trust and
    data quality/value. *)

type item = {
  trust : int;  (** 1..5 *)
  quality : int;  (** 1..5 *)
  value : int;  (** 1..5 — distractor *)
  kind : string;  (** image | signal | document *)
}

val kinds : string list
val options : string list
val option_valid : item -> string -> bool

(** The most permissive valid option. *)
val ground_truth_choice : item -> string

val sample : seed:int -> int -> item list
val to_context : item -> Asp.Program.t
val gpm : unit -> Asg.Gpm.t
val modes : ?max_body:int -> unit -> Ilp.Mode.t
val examples_of : item list -> Ilp.Example.t list
val decide : Asg.Gpm.t -> item -> string
val gpm_accuracy : Asg.Gpm.t -> item list -> float
