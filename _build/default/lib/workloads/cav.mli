(** The connected-and-autonomous-vehicle scenario (Section IV-A): accept
    or reject a driving-task request given LOA and environment, with a
    hidden threshold-based ground truth. *)

type scenario = {
  task : string;  (** turn | straight | overtake | park *)
  vehicle_loa : int;  (** 1..5 *)
  region_loa : int;  (** 1..5 — a distractor attribute *)
  weather : string;  (** clear | rain | snow | fog *)
  time : string;  (** day | night *)
}

val tasks : string list
val weathers : string list
val times : string list
val required_loa : string -> int

(** May the task be accepted? *)
val ground_truth : scenario -> bool

val sample : seed:int -> int -> scenario list
val all_scenarios : unit -> scenario list
val to_context : scenario -> Asp.Program.t

(** Decision grammar plus the LOA requirement table as background. *)
val gpm : unit -> Asg.Gpm.t

val modes : ?max_body:int -> unit -> Ilp.Mode.t
val examples_of : scenario list -> Ilp.Example.t list

(** Accept iff "accept" is valid in the scenario's context. *)
val decide : Asg.Gpm.t -> scenario -> bool

val gpm_accuracy : Asg.Gpm.t -> scenario list -> float
val to_dataset : scenario list -> Ml.Dataset.t
