(** Convoy composition (Section IV-B): "how the convoy should be made up
    (ratio of delivery vehicles ... to the number of escort vehicles)".

    Unlike the single-token decision workloads, policies here are
    {e structured strings} — convoy compositions like
    ["truck truck escort drone"] — and the ASG's recursive annotations
    count units structurally (the unit-list productions thread
    [trucks/escorts/drones] counts up the parse tree), exactly the
    counting idiom of the answer-set-grammar formalism. The learner's
    constraints then relate those counts to the threat context. *)

let unit_kinds = [ "truck"; "escort"; "drone" ]

type composition = { trucks : int; escorts : int; drones : int }

type situation = {
  threat : int;  (** 0..4 *)
  composition : composition;
}

(** Hidden ground truth: a convoy is deployable iff it carries cargo
    (≥1 truck); from threat level 2 escorts must match trucks; from
    threat level 3 a recon drone is required. *)
let valid ~threat (c : composition) : bool =
  c.trucks >= 1
  && (threat < 2 || c.escorts >= c.trucks)
  && (threat < 3 || c.drones >= 1)

let to_sentence (c : composition) : string =
  String.concat " "
    (List.concat
       [
         List.init c.trucks (fun _ -> "truck");
         List.init c.escorts (fun _ -> "escort");
         List.init c.drones (fun _ -> "drone");
       ])

let context ~threat : Asp.Program.t =
  Util.facts_program [ Printf.sprintf "threat(%d)." threat ]

(** The initial GPM: the unit-list grammar with structural counting
    annotations. Production 0 (the root) is where constraints are
    learned. *)
let gpm () : Asg.Gpm.t =
  Asg.Asg_parser.parse
    {| convoy -> units {
         trucks(T) :- trucks(T)@1.
         escorts(E) :- escorts(E)@1.
         drones(D) :- drones(D)@1.
       }
       units -> "truck" units {
           trucks(T + 1) :- trucks(T)@2.
           escorts(E) :- escorts(E)@2.
           drones(D) :- drones(D)@2.
         }
       | "escort" units {
           trucks(T) :- trucks(T)@2.
           escorts(E + 1) :- escorts(E)@2.
           drones(D) :- drones(D)@2.
         }
       | "drone" units {
           trucks(T) :- trucks(T)@2.
           escorts(E) :- escorts(E)@2.
           drones(D + 1) :- drones(D)@2.
         }
       | { trucks(0). escorts(0). drones(0). } |}

(** Mode bias: root constraints over the structural counts and the threat
    level, with unit-ratio and threshold comparisons. *)
let modes ?(max_body = 3) () : Ilp.Mode.t =
  Ilp.Mode.make ~target_prods:[ 0 ] ~heads:[ Ilp.Mode.Constraint ]
    ~bodies:
      [
        Ilp.Mode.matom ~required:true "trucks" [ Ilp.Mode.Variable "t" ];
        Ilp.Mode.matom ~required:true "escorts" [ Ilp.Mode.Variable "e" ];
        Ilp.Mode.matom ~required:true "drones" [ Ilp.Mode.Variable "d" ];
        Ilp.Mode.matom "threat" [ Ilp.Mode.Variable "l" ];
      ]
    ~cmps:
      [
        (Asp.Rule.Lt, "t", Ilp.Mode.IntOperand 1);
        (Asp.Rule.Lt, "d", Ilp.Mode.IntOperand 1);
        (Asp.Rule.Lt, "e", Ilp.Mode.VarOperand "t");
        (Asp.Rule.Ge, "l", Ilp.Mode.IntOperand 2);
        (Asp.Rule.Ge, "l", Ilp.Mode.IntOperand 3);
      ]
    ~max_body ()

let sample_composition st : composition =
  {
    trucks = Util.pick_int st 0 3;
    escorts = Util.pick_int st 0 3;
    drones = Util.pick_int st 0 2;
  }

let sample ~seed n : situation list =
  Util.sample (Util.rng seed) n (fun st ->
      { threat = Util.pick_int st 0 4; composition = sample_composition st })

(** Every composition with at most [max_units] per kind, crossed with all
    threat levels. *)
let all_situations ?(max_units = 2) () : situation list =
  List.concat_map
    (fun threat ->
      List.concat_map
        (fun trucks ->
          List.concat_map
            (fun escorts ->
              List.map
                (fun drones ->
                  { threat; composition = { trucks; escorts; drones } })
                (List.init (max_units + 1) Fun.id))
            (List.init (max_units + 1) Fun.id))
        (List.init (max_units + 1) Fun.id))
    (List.init 5 Fun.id)

let examples_of (situations : situation list) : Ilp.Example.t list =
  List.map
    (fun s ->
      let sentence = to_sentence s.composition in
      let context = context ~threat:s.threat in
      if valid ~threat:s.threat s.composition then
        Ilp.Example.positive ~context sentence
      else Ilp.Example.negative ~context sentence)
    situations

(** Is the composition accepted by a (learned) GPM in its threat context? *)
let accepts (g : Asg.Gpm.t) (s : situation) : bool =
  Asg.Membership.accepts_in_context g ~context:(context ~threat:s.threat)
    (to_sentence s.composition)

let gpm_accuracy (g : Asg.Gpm.t) (test : situation list) : float =
  match test with
  | [] -> 1.0
  | _ ->
    let correct =
      List.length
        (List.filter
           (fun s -> accepts g s = valid ~threat:s.threat s.composition)
           test)
    in
    float_of_int correct /. float_of_int (List.length test)

(** Generate the deployable convoys for a threat level (bounded size) —
    the "how should the convoy be made up" question, answered
    generatively. *)
let deployable ?(max_depth = 7) (g : Asg.Gpm.t) ~threat : string list =
  Asg.Language.sentences_in_context ~max_depth g ~context:(context ~threat)
