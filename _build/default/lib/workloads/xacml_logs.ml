(** The access-control case study (Section IV-C, Figure 3): synthetic
    request/response logs in the shape of the public XACML conformance
    dataset the paper used — attribute-based requests over subject role,
    resource type and action, with decisions drawn from a hidden
    ground-truth policy. The generators cover the three Figure-3b failure
    scenarios: sparse logs (overfitting), logs that admit an over-general
    hypothesis (unsafe generalization), and noisy logs with irrelevant
    responses. *)

let roles = [ "admin"; "manager"; "developer"; "intern"; "auditor" ]
let resources = [ "database"; "repository"; "report"; "config" ]
let actions = [ "read"; "write"; "delete" ]

let seniority = function
  | "intern" -> 1
  | "auditor" -> 2
  | "developer" -> 2
  | "manager" -> 3
  | "admin" -> 4
  | _ -> 0

let role_attr = Policy.Attribute.subject "role"
let resource_attr = Policy.Attribute.resource "type"
let action_attr = Policy.Attribute.action "id"

let request ~role ~resource ~action : Policy.Request.t =
  Policy.Request.of_list
    [
      (role_attr, Policy.Attribute.Str role);
      (resource_attr, Policy.Attribute.Str resource);
      (action_attr, Policy.Attribute.Str action);
    ]

let request_space () : Policy.Request.t list =
  List.concat_map
    (fun role ->
      List.concat_map
        (fun resource ->
          List.map (fun action -> request ~role ~resource ~action) actions)
        resources)
    roles

(** Hidden ground truth, seniority-based:
    deny deletes below admin, deny writes by interns, deny any access to
    config below manager; permit otherwise. *)
let ground_truth_decision (r : Policy.Request.t) : Policy.Decision.t =
  let str a =
    match Policy.Request.find a r with
    | Some (Policy.Attribute.Str s) -> s
    | _ -> ""
  in
  let role = str role_attr and resource = str resource_attr and action = str action_attr in
  let s = seniority role in
  if action = "delete" && s < 4 then Policy.Decision.Deny
  else if action = "write" && s < 2 then Policy.Decision.Deny
  else if resource = "config" && s < 3 then Policy.Decision.Deny
  else Policy.Decision.Permit

(** The same ground truth as an explicit XACML-style policy (used by the
    quality experiments). *)
let ground_truth_policy () : Policy.Rule_policy.t =
  let open Policy in
  let below_admin =
    Expr.One_of (role_attr, List.filter_map
      (fun r -> if seniority r < 4 then Some (Attribute.Str r) else None) roles)
  in
  let below_dev =
    Expr.One_of (role_attr, List.filter_map
      (fun r -> if seniority r < 2 then Some (Attribute.Str r) else None) roles)
  in
  let below_mgr =
    Expr.One_of (role_attr, List.filter_map
      (fun r -> if seniority r < 3 then Some (Attribute.Str r) else None) roles)
  in
  Rule_policy.make ~alg:Rule_policy.First_applicable "ground-truth"
    [
      Rule_policy.rule ~effect:Rule_policy.Deny "deny-delete"
        ~condition:
          (Expr.And
             [ Expr.Equals (action_attr, Attribute.Str "delete"); below_admin ]);
      Rule_policy.rule ~effect:Rule_policy.Deny "deny-intern-write"
        ~condition:
          (Expr.And
             [ Expr.Equals (action_attr, Attribute.Str "write"); below_dev ]);
      Rule_policy.rule ~effect:Rule_policy.Deny "deny-config"
        ~condition:
          (Expr.And
             [ Expr.Equals (resource_attr, Attribute.Str "config"); below_mgr ]);
      Rule_policy.rule ~effect:Rule_policy.Permit "default-permit";
    ]

(** A clean request/decision log sampled uniformly from the space. *)
let log ~seed ~n () : (Policy.Request.t * Policy.Decision.t) list =
  let st = Util.rng seed in
  Util.sample st n (fun st ->
      let r =
        request ~role:(Util.pick st roles) ~resource:(Util.pick st resources)
          ~action:(Util.pick st actions)
      in
      (r, ground_truth_decision r))

(** Noisy log: with probability [flip] the decision is inverted, and with
    probability [irrelevant] it is replaced by NotApplicable (the
    "irrelevant responses" of the paper's discussion). *)
let noisy_log ~seed ~n ~flip ~irrelevant () :
    (Policy.Request.t * Policy.Decision.t) list =
  let st = Util.rng seed in
  List.map
    (fun (r, d) ->
      if Util.flip st irrelevant then (r, Policy.Decision.Not_applicable)
      else if Util.flip st flip then
        ( r,
          match d with
          | Policy.Decision.Permit -> Policy.Decision.Deny
          | Policy.Decision.Deny -> Policy.Decision.Permit
          | other -> other )
      else (r, d))
    (log ~seed:(seed + 7919) ~n ())

(** Sparse log for the overfitting experiment: only requests from
    [visible_roles] appear in training. *)
let sparse_log ~seed ~n ~visible_roles () :
    (Policy.Request.t * Policy.Decision.t) list =
  let st = Util.rng seed in
  Util.sample st n (fun st ->
      let r =
        request ~role:(Util.pick st visible_roles)
          ~resource:(Util.pick st resources) ~action:(Util.pick st actions)
      in
      (r, ground_truth_decision r))

let vocabulary () : (Policy.Attribute.t * string list) list =
  [ (role_attr, roles); (resource_attr, resources); (action_attr, actions) ]

(** Flat (role-enumerating) mode bias. *)
let modes ?(max_body = 3) () : Ilp.Mode.t =
  Policy.Xacml.modes ~vocabulary:(vocabulary ()) ~max_body ()

(** The plain decision GPM. *)
let gpm () : Asg.Gpm.t = Policy.Xacml.decision_gpm ()

(** The GPM extended with background knowledge: the role hierarchy
    (seniority facts and the subject's derived level) that enables safe
    generalization across roles. *)
let gpm_with_hierarchy () : Asg.Gpm.t =
  let background =
    Asg.Annotation.parse
      (String.concat " "
         (List.map
            (fun r -> Printf.sprintf "seniority(%s, %d)." r (seniority r))
            roles
         @ [ "role_level(S) :- attr(subject, role, R), seniority(R, S)." ]))
  in
  Asg.Gpm.add_annotation (gpm ()) Policy.Xacml.start_production background

(** Mode bias that exploits the hierarchy: constraints may test the
    subject's seniority level against thresholds instead of enumerating
    roles. *)
let hierarchy_modes ?(max_body = 3) () : Ilp.Mode.t =
  Ilp.Mode.make ~target_prods:[ Policy.Xacml.start_production ]
    ~heads:[ Ilp.Mode.Constraint ]
    ~bodies:
      [
        Ilp.Mode.matom ~required:true ~site:(Some 1) "result"
          [ Ilp.Mode.Constants [ "permit" ] ];
        Ilp.Mode.matom "attr"
          [
            Ilp.Mode.Constants [ "action" ];
            Ilp.Mode.Constants [ "id" ];
            Ilp.Mode.Constants actions;
          ];
        Ilp.Mode.matom "attr"
          [
            Ilp.Mode.Constants [ "resource" ];
            Ilp.Mode.Constants [ "type" ];
            Ilp.Mode.Constants resources;
          ];
        Ilp.Mode.matom "role_level" [ Ilp.Mode.Variable "s" ];
      ]
    ~cmps:
      [
        (Asp.Rule.Lt, "s", Ilp.Mode.IntOperand 2);
        (Asp.Rule.Lt, "s", Ilp.Mode.IntOperand 3);
        (Asp.Rule.Lt, "s", Ilp.Mode.IntOperand 4);
      ]
    ~max_body ()

(** Accuracy of a learned GPM against the ground truth over a request
    set. *)
let gpm_accuracy (g : Asg.Gpm.t) (requests : Policy.Request.t list) : float =
  match requests with
  | [] -> 1.0
  | _ ->
    let correct =
      List.length
        (List.filter
           (fun r ->
             Policy.Decision.equal (Policy.Xacml.decide g r)
               (ground_truth_decision r))
           requests)
    in
    float_of_int correct /. float_of_int (List.length requests)
