(** The logistical-resupply scenario (Section IV-B, DAIS-ITA): a convoy
    must pick a route under threat estimates, weather and the coalition's
    risk appetite. Missions happen in sequence, so training examples
    accumulate and the learned policy should improve; a mid-campaign risk
    appetite shift exercises policy adaptation. *)

type mission = {
  threat_north : int;  (** 0..4 *)
  threat_south : int;
  threat_river : int;
  weather : string;  (** clear | rain | storm *)
  time : string;  (** day | night *)
  risk_appetite : string;  (** low | high *)
}

let routes = [ "north"; "south"; "river" ]
let weathers = [ "clear"; "rain"; "storm" ]
let times = [ "day"; "night" ]

let threat (m : mission) = function
  | "north" -> m.threat_north
  | "south" -> m.threat_south
  | "river" -> m.threat_river
  | _ -> 5

let max_threat_for = function "low" -> 1 | _ -> 3

(** Ground truth: a route option is acceptable when its threat does not
    exceed the appetite threshold, and the river route is never taken in
    a storm. *)
let route_valid (m : mission) (route : string) : bool =
  threat m route <= max_threat_for m.risk_appetite
  && not (route = "river" && m.weather = "storm")

let sample_mission ?(risk_appetite = "low") st : mission =
  {
    threat_north = Util.pick_int st 0 4;
    threat_south = Util.pick_int st 0 4;
    threat_river = Util.pick_int st 0 4;
    weather = Util.pick st weathers;
    time = Util.pick st times;
    risk_appetite;
  }

(** A campaign: [n] missions; risk appetite switches from low to high
    after mission [shift_at] (inclusive), if given. *)
let campaign ~seed ~n ?shift_at () : mission list =
  let st = Util.rng seed in
  List.init n (fun i ->
      let risk_appetite =
        match shift_at with Some k when i >= k -> "high" | _ -> "low"
      in
      sample_mission ~risk_appetite st)

let to_context (m : mission) : Asp.Program.t =
  Util.facts_program
    [
      Printf.sprintf "threat(north, %d)." m.threat_north;
      Printf.sprintf "threat(south, %d)." m.threat_south;
      Printf.sprintf "threat(river, %d)." m.threat_river;
      Printf.sprintf "weather(%s)." m.weather;
      Printf.sprintf "time(%s)." m.time;
      Printf.sprintf "risk_appetite(%s)." m.risk_appetite;
    ]

(** Initial GPM: route grammar plus the appetite-threshold table as
    background knowledge. *)
let gpm () : Asg.Gpm.t =
  Asg.Asg_parser.parse
    {| start -> route {
         max_threat(1) :- risk_appetite(low).
         max_threat(3) :- risk_appetite(high).
       }
       route -> "north" { chosen(north). }
              | "south" { chosen(south). }
              | "river" { chosen(river). } |}

let modes ?(max_body = 3) () : Ilp.Mode.t =
  Ilp.Mode.make ~target_prods:[ 0 ] ~heads:[ Ilp.Mode.Constraint ]
    ~bodies:
      [
        Ilp.Mode.matom ~required:true ~site:(Some 1) "chosen" [ Ilp.Mode.Variable "rt" ];
        Ilp.Mode.matom ~required:true ~site:(Some 1) "chosen" [ Ilp.Mode.Constants routes ];
        Ilp.Mode.matom "threat"
          [ Ilp.Mode.Variable "rt"; Ilp.Mode.Variable "t" ];
        Ilp.Mode.matom "max_threat" [ Ilp.Mode.Variable "m" ];
        Ilp.Mode.matom "weather" [ Ilp.Mode.Constants weathers ];
        Ilp.Mode.matom "time" [ Ilp.Mode.Constants times ];
      ]
    ~cmps:[ (Asp.Rule.Gt, "t", Ilp.Mode.VarOperand "m") ]
    ~max_body ()

(** Examples from after-action review of a mission: every route option is
    labelled valid/invalid by the ground truth. *)
let examples_of_mission (m : mission) : Ilp.Example.t list =
  let context = to_context m in
  List.map
    (fun route ->
      if route_valid m route then Ilp.Example.positive ~context route
      else Ilp.Example.negative ~context route)
    routes

(** Valid route options a GPM offers for a mission. *)
let options (g : Asg.Gpm.t) (m : mission) : string list =
  List.filter
    (fun route ->
      Asg.Membership.accepts_in_context g ~context:(to_context m) route)
    routes

(** Option accuracy: fraction of (mission, route) pairs on which the GPM's
    validity judgement matches the ground truth. *)
let gpm_accuracy (g : Asg.Gpm.t) (test : mission list) : float =
  match test with
  | [] -> 1.0
  | _ ->
    let judgements =
      List.concat_map
        (fun m ->
          List.map
            (fun route ->
              Asg.Membership.accepts_in_context g ~context:(to_context m) route
              = route_valid m route)
            routes)
        test
    in
    float_of_int (List.length (List.filter Fun.id judgements))
    /. float_of_int (List.length judgements)

(* -- Utility-based route selection (paper's policy type iii) ------------ *)

(** A GPM whose annotations also carry a value function: routes cost their
    threat level, and river crossings at night cost an extra 2. The best
    route is the valid one with minimal cost. *)
let utility_gpm () : Asg.Gpm.t =
  Asg.Asg_parser.parse
    {| start -> route {
         max_threat(1) :- risk_appetite(low).
         max_threat(3) :- risk_appetite(high).
         :~ chosen(R)@1, threat(R, T). [T]
         :~ chosen(river)@1, time(night). [2]
       }
       route -> "north" { chosen(north). }
              | "south" { chosen(south). }
              | "river" { chosen(river). } |}

(** Ground-truth utility of a route (lower is better). *)
let route_cost (m : mission) (route : string) : int =
  threat m route + if route = "river" && m.time = "night" then 2 else 0

(** The oracle's best route: the valid route of minimal cost (ties broken
    by route order), if any route is valid at all. *)
let best_route_oracle (m : mission) : string option =
  let valid = List.filter (route_valid m) routes in
  List.fold_left
    (fun acc r ->
      match acc with
      | Some b when route_cost m b <= route_cost m r -> acc
      | _ -> Some r)
    None valid

(** The best route according to a (possibly learned) utility GPM. *)
let best_route (g : Asg.Gpm.t) (m : mission) : string option =
  Option.map fst
    (Asg.Language.best_sentence ~max_depth:4 g ~context:(to_context m))

(** Fraction of missions on which the GPM picks a cost-optimal valid
    route. *)
let utility_accuracy (g : Asg.Gpm.t) (test : mission list) : float =
  match test with
  | [] -> 1.0
  | _ ->
    let correct =
      List.filter
        (fun m ->
          match (best_route g m, best_route_oracle m) with
          | None, None -> true
          | Some r, Some _ ->
            route_valid m r
            && route_cost m r
               = route_cost m (Option.get (best_route_oracle m))
          | _ -> false)
        test
    in
    float_of_int (List.length correct) /. float_of_int (List.length test)
