(** Seeded sampling helpers; all randomness is deterministic per seed. *)

val rng : int -> Random.State.t
val pick : Random.State.t -> 'a list -> 'a
val pick_int : Random.State.t -> int -> int -> int
val flip : Random.State.t -> float -> bool
val sample : Random.State.t -> int -> (Random.State.t -> 'a) -> 'a list
val facts_program : string list -> Asp.Program.t
