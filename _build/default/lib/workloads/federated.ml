(** The federated-learning scenario (Section IV-E): when a partially
    trusted partner sends a model, decide whether to adopt it outright,
    blend it into an ensemble, or discard it — based on partner trust,
    the model's reported accuracy and the domain match. The paper notes
    these policies are hard to write manually and proposes generating
    them with ASGs; this workload exercises exactly that code path. *)

type offer = {
  trust : int;  (** 1..5 *)
  reported_accuracy : int;  (** 0..100, in steps of 10 *)
  domain : string;  (** same | near | far *)
}

let domains = [ "same"; "near"; "far" ]
let options = [ "adopt"; "ensemble"; "discard" ]

let option_valid (o : offer) = function
  | "adopt" -> o.trust >= 4 && o.reported_accuracy >= 80 && o.domain = "same"
  | "ensemble" ->
    o.trust >= 2 && o.reported_accuracy >= 60 && o.domain <> "far"
  | "discard" -> true
  | _ -> false

let ground_truth_choice (o : offer) : string =
  if option_valid o "adopt" then "adopt"
  else if option_valid o "ensemble" then "ensemble"
  else "discard"

let sample_offer st : offer =
  {
    trust = Util.pick_int st 1 5;
    reported_accuracy = 10 * Util.pick_int st 0 10;
    domain = Util.pick st domains;
  }

let sample ~seed n : offer list = Util.sample (Util.rng seed) n sample_offer

let to_context (o : offer) : Asp.Program.t =
  Util.facts_program
    [
      Printf.sprintf "trust(%d)." o.trust;
      Printf.sprintf "accuracy(%d)." o.reported_accuracy;
      Printf.sprintf "domain(%s)." o.domain;
    ]

let gpm () : Asg.Gpm.t =
  Asg.Asg_parser.parse
    {| start -> action
       action -> "adopt" { act(adopt). }
               | "ensemble" { act(ensemble). }
               | "discard" { act(discard). } |}

let modes ?(max_body = 2) () : Ilp.Mode.t =
  Ilp.Mode.make ~target_prods:[ 0 ] ~heads:[ Ilp.Mode.Constraint ]
    ~bodies:
      [
        Ilp.Mode.matom ~required:true ~site:(Some 1) "act"
          [ Ilp.Mode.Constants [ "adopt"; "ensemble" ] ];
        Ilp.Mode.matom "trust" [ Ilp.Mode.Variable "t" ];
        Ilp.Mode.matom "accuracy" [ Ilp.Mode.Variable "a" ];
        Ilp.Mode.matom "domain" [ Ilp.Mode.Constants domains ];
      ]
    ~cmps:
      [
        (Asp.Rule.Lt, "t", Ilp.Mode.IntOperand 2);
        (Asp.Rule.Lt, "t", Ilp.Mode.IntOperand 4);
        (Asp.Rule.Lt, "a", Ilp.Mode.IntOperand 60);
        (Asp.Rule.Lt, "a", Ilp.Mode.IntOperand 80);
      ]
    ~max_body ()

let examples_of (offers : offer list) : Ilp.Example.t list =
  List.concat_map
    (fun o ->
      let context = to_context o in
      List.map
        (fun opt ->
          if option_valid o opt then Ilp.Example.positive ~context opt
          else Ilp.Example.negative ~context opt)
        options)
    offers

let decide (g : Asg.Gpm.t) (o : offer) : string =
  let context = to_context o in
  let valid opt = Asg.Membership.accepts_in_context g ~context opt in
  if valid "adopt" then "adopt"
  else if valid "ensemble" then "ensemble"
  else "discard"

let gpm_accuracy (g : Asg.Gpm.t) (test : offer list) : float =
  match test with
  | [] -> 1.0
  | _ ->
    let correct =
      List.length
        (List.filter (fun o -> decide g o = ground_truth_choice o) test)
    in
    float_of_int correct /. float_of_int (List.length test)
