(** Policy repair: the sentence-level counterpart of counterfactual
    explanation. Where {!Counterfactual} asks "what context would have
    made this policy valid?", repair asks "what is the minimal change to
    the {e policy} that makes it valid in this context?" — e.g. which
    unit to add to an undeployable convoy. Breadth-first over token
    edits (insert / delete / replace), so the first answer is an edit-
    distance-minimal valid policy. *)

type edit =
  | Insert of int * string  (** position, token *)
  | Delete of int  (** position *)
  | Replace of int * string  (** position, new token *)

let pp_edit ppf = function
  | Insert (i, tok) -> Fmt.pf ppf "insert %S at %d" tok i
  | Delete i -> Fmt.pf ppf "delete token %d" i
  | Replace (i, tok) -> Fmt.pf ppf "replace token %d with %S" i tok

let apply_edit (tokens : string list) (e : edit) : string list =
  match e with
  | Insert (i, tok) ->
    List.concat
      [ List.filteri (fun j _ -> j < i) tokens; [ tok ];
        List.filteri (fun j _ -> j >= i) tokens ]
  | Delete i -> List.filteri (fun j _ -> j <> i) tokens
  | Replace (i, tok) -> List.mapi (fun j t -> if j = i then tok else t) tokens

type result = {
  repaired : string;  (** the valid sentence found *)
  edits : int;  (** edit distance from the original *)
}

(** Find a valid sentence within [max_edits] token edits of [sentence]
    under [context]. The insertable/replacement vocabulary is the
    grammar's terminal set. Returns [None] if no valid sentence is within
    reach (or the frontier exceeds [max_frontier] candidates). *)
let repair ?(max_edits = 2) ?(max_frontier = 20_000) (gpm : Asg.Gpm.t)
    ~(context : Asp.Program.t) (sentence : string) : result option =
  let vocabulary = Grammar.Cfg.terminals (Asg.Gpm.cfg gpm) in
  let valid tokens = Asg.Membership.accepts_tokens (Asg.Gpm.with_context gpm context) tokens in
  let initial = Asg.Membership.tokenize sentence in
  if valid initial then Some { repaired = sentence; edits = 0 }
  else begin
    let seen = Hashtbl.create 64 in
    let key tokens = String.concat " " tokens in
    Hashtbl.replace seen (key initial) ();
    let frontier = ref [ initial ] in
    let rec expand depth =
      if depth > max_edits || !frontier = [] then None
      else begin
        let next = ref [] in
        let found = ref None in
        List.iter
          (fun tokens ->
            if !found = None then begin
              let n = List.length tokens in
              let candidates =
                List.concat
                  [
                    (* insertions at every position *)
                    List.concat_map
                      (fun i -> List.map (fun tok -> Insert (i, tok)) vocabulary)
                      (List.init (n + 1) Fun.id);
                    (* deletions *)
                    List.map (fun i -> Delete i) (List.init n Fun.id);
                    (* replacements *)
                    List.concat_map
                      (fun i -> List.map (fun tok -> Replace (i, tok)) vocabulary)
                      (List.init n Fun.id);
                  ]
              in
              List.iter
                (fun e ->
                  if !found = None then begin
                    let tokens' = apply_edit tokens e in
                    let k = key tokens' in
                    if not (Hashtbl.mem seen k) then begin
                      Hashtbl.replace seen k ();
                      if valid tokens' then
                        found := Some { repaired = k; edits = depth }
                      else if Hashtbl.length seen < max_frontier then
                        next := tokens' :: !next
                    end
                  end)
                candidates
            end)
          !frontier;
        match !found with
        | Some r -> Some r
        | None ->
          frontier := !next;
          expand (depth + 1)
      end
    in
    expand 1
  end

let to_sentence (original : string) (r : result) : string =
  if r.edits = 0 then Printf.sprintf "%S is already valid" original
  else
    Printf.sprintf "%S becomes valid as %S (%d edit%s)" original r.repaired
      r.edits
      (if r.edits = 1 then "" else "s")
