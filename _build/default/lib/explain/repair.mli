(** Policy repair: the minimal token edits making a rejected policy valid
    in a context (e.g. which unit to add to an undeployable convoy).
    Breadth-first over edit distance. *)

type edit =
  | Insert of int * string  (** position, token *)
  | Delete of int
  | Replace of int * string

val pp_edit : Format.formatter -> edit -> unit
val apply_edit : string list -> edit -> string list

type result = {
  repaired : string;  (** the valid sentence found *)
  edits : int;  (** edit distance from the original *)
}

(** A valid sentence within [max_edits] token edits; insertions and
    replacements draw from the grammar's terminals. *)
val repair :
  ?max_edits:int ->
  ?max_frontier:int ->
  Asg.Gpm.t ->
  context:Asp.Program.t ->
  string ->
  result option

val to_sentence : string -> result -> string
