(** Counterfactual explanations (Section V-B): the minimal change to the
    context under which a rejected policy would have been valid —
    the "if your income had been $45,000 you would have been offered a
    loan" style of explanation the paper borrows from Wachter et al. *)

type change =
  | Replace of Asp.Atom.t * Asp.Atom.t
  | Remove of Asp.Atom.t
  | Add of Asp.Atom.t

let pp_change ppf = function
  | Replace (a, b) ->
    Fmt.pf ppf "if %a had been %a" Asp.Atom.pp a Asp.Atom.pp b
  | Remove a -> Fmt.pf ppf "if %a had not held" Asp.Atom.pp a
  | Add a -> Fmt.pf ppf "if %a had held" Asp.Atom.pp a

let change_to_string c = Fmt.str "%a" pp_change c

let apply_changes (facts : Asp.Atom.t list) (changes : change list) :
    Asp.Atom.t list =
  List.fold_left
    (fun facts -> function
      | Replace (old_fact, new_fact) ->
        new_fact
        :: List.filter (fun a -> not (Asp.Atom.equal a old_fact)) facts
      | Remove old_fact ->
        List.filter (fun a -> not (Asp.Atom.equal a old_fact)) facts
      | Add new_fact -> new_fact :: facts)
    facts changes

(** All single changes available from [facts]: replacements from
    [alternatives], removals (if [allow_remove]), and additions. *)
let single_changes ?(allow_remove = false) ~alternatives ~additions facts :
    change list =
  List.concat_map
    (fun fact ->
      List.map (fun alt -> Replace (fact, alt)) (alternatives fact)
      @ (if allow_remove then [ Remove fact ] else []))
    facts
  @ List.filter_map
      (fun a ->
        if List.exists (Asp.Atom.equal a) facts then None else Some (Add a))
      additions

(** Find a minimal counterfactual: the smallest set of context changes
    (up to [max_changes]) under which [sentence] becomes valid.
    Breadth-first over change-set size, so the first answer is minimal. *)
let find ?(max_changes = 2) ?(allow_remove = false)
    ?(additions = []) ~(alternatives : Asp.Atom.t -> Asp.Atom.t list)
    (gpm : Asg.Gpm.t) ~(facts : Asp.Atom.t list) (sentence : string) :
    change list option =
  let accepted facts =
    let context = Asp.Program.with_facts Asp.Program.empty facts in
    Asg.Membership.accepts_in_context gpm ~context sentence
  in
  if accepted facts then Some []
  else begin
    let singles = single_changes ~allow_remove ~alternatives ~additions facts in
    (* enumerate change sets of growing size *)
    let rec combos k (pool : change list) : change list list =
      if k = 0 then [ [] ]
      else
        match pool with
        | [] -> []
        | c :: rest ->
          List.map (fun s -> c :: s) (combos (k - 1) rest) @ combos k rest
    in
    let rec try_size k =
      if k > max_changes then None
      else
        let candidates = combos k singles in
        match
          List.find_opt
            (fun changes -> accepted (apply_changes facts changes))
            candidates
        with
        | Some changes -> Some changes
        | None -> try_size (k + 1)
    in
    try_size 1
  end

(** Human-readable counterfactual sentence. *)
let to_sentence (sentence : string) (changes : change list) : string =
  match changes with
  | [] -> Printf.sprintf "%S is already valid" sentence
  | _ ->
    Printf.sprintf "%s, %S would have been valid"
      (String.concat " and " (List.map change_to_string changes))
      sentence
