lib/explain/counterfactual.ml: Asg Asp Fmt List Printf String
