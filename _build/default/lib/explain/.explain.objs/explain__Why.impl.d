lib/explain/why.ml: Asg Asp Fmt Grammar List String
