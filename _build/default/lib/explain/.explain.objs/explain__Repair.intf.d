lib/explain/repair.mli: Asg Asp Format
