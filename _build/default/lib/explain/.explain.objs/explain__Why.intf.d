lib/explain/why.mli: Asg Asp Format
