lib/explain/counterfactual.mli: Asg Asp Format
