lib/explain/repair.ml: Asg Asp Fmt Fun Grammar Hashtbl List Printf String
