(** Counterfactual explanations (Section V-B): the minimal context change
    under which a rejected policy would have been valid. *)

type change =
  | Replace of Asp.Atom.t * Asp.Atom.t
  | Remove of Asp.Atom.t
  | Add of Asp.Atom.t

val pp_change : Format.formatter -> change -> unit
val change_to_string : change -> string
val apply_changes : Asp.Atom.t list -> change list -> Asp.Atom.t list

(** Breadth-first over change-set size, so the first answer is minimal;
    [Some []] when the sentence is already valid, [None] when no change
    set within [max_changes] helps. *)
val find :
  ?max_changes:int ->
  ?allow_remove:bool ->
  ?additions:Asp.Atom.t list ->
  alternatives:(Asp.Atom.t -> Asp.Atom.t list) ->
  Asg.Gpm.t ->
  facts:Asp.Atom.t list ->
  string ->
  change list option

(** Human-readable counterfactual sentence. *)
val to_sentence : string -> change list -> string
