(** The Policy Enforcement Point: carries out decisions and records the
    monitoring stream the PAdaP learns from. *)

type record = {
  tick : int;
  context : Asp.Program.t;
  decision : Pdp.decision;
  compliant : bool;  (** monitoring verdict *)
}

type t

val create : unit -> t
val enforce : t -> context:Asp.Program.t -> Pdp.decision -> verdict:bool -> record
val log : t -> record list
val tick : t -> int
val compliance_rate : t -> float
