(** Multi-party policy sharing (Section III-A3 / CASWiki): AMSs publish
    their learned policy models to a shared knowledge base; peers pull
    them, validate them against local evidence at the PCP, and merge the
    ones that do not degrade local behaviour. *)

type shared_entry = {
  author : string;
  hypothesis : Ilp.Task.hypothesis;
}

type t = {
  mutable members : Ams.t list;
  mutable wiki : shared_entry list;  (** the shared policy repository *)
}

let create () = { members = []; wiki = [] }

let add_member t ams = t.members <- t.members @ [ ams ]
let members t = t.members
let wiki_size t = List.length t.wiki

(** Publish a member's current hypothesis to the shared repository. *)
let share (t : t) (ams : Ams.t) =
  let h = Ams.hypothesis ams in
  if h <> [] then t.wiki <- { author = Ams.name ams; hypothesis = h } :: t.wiki

(** Adoption gates: [`Pcp] validates each foreign rule against local
    evidence at the Policy Checking Point (the framework's design);
    [`Trust_all] installs everything — the naive baseline the Byzantine
    experiments compare against. *)
type gate = [ `Pcp | `Trust_all ]

(** Pull shared knowledge into [ams]: every foreign hypothesis rule not
    already present is considered; under the [`Pcp] gate the merged model
    must introduce no new violation on local evidence to be installed.
    Returns the number of rules adopted. *)
let adopt ?(gate : gate = `Pcp) (t : t) (ams : Ams.t) : int =
  let own = Ams.hypothesis ams in
  let have (c : Ilp.Hypothesis_space.candidate) hs =
    List.exists
      (fun (c' : Ilp.Hypothesis_space.candidate) ->
        c'.prod_id = c.prod_id && Asg.Annotation.equal_rule c'.rule c.rule)
      hs
  in
  let foreign =
    List.concat_map
      (fun e ->
        if e.author = Ams.name ams then [] else e.hypothesis)
      t.wiki
  in
  let candidates = List.filter (fun c -> not (have c own)) foreign in
  (* greedy adoption: add each candidate if the PCP accepts the merge *)
  let validation = Ams.examples ams in
  let adopted = ref 0 in
  let current = ref own in
  List.iter
    (fun c ->
      if not (have c !current) then begin
        let merged = !current @ [ c ] in
        let accepted =
          match gate with
          | `Trust_all -> true
          | `Pcp ->
            let local_gpm =
              Ilp.Task.apply_hypothesis (Ams.base_gpm ams) !current
            in
            let merged_gpm =
              Ilp.Task.apply_hypothesis (Ams.base_gpm ams) merged
            in
            Pcp.accept_shared ~local:local_gpm ~candidate:merged_gpm validation
        in
        if accepted then begin
          current := merged;
          incr adopted
        end
      end)
    candidates;
  if !adopted > 0 then Ams.install_hypothesis ams !current;
  !adopted

(** One gossip round: everyone shares, then everyone adopts. Returns the
    total number of adopted rules. *)
let gossip_round ?gate (t : t) : int =
  List.iter (fun m -> share t m) t.members;
  List.fold_left (fun acc m -> acc + adopt ?gate t m) 0 t.members

(** Publish an arbitrary hypothesis under a member name — used to model a
    compromised or faulty coalition member. *)
let publish_raw (t : t) ~author (hypothesis : Ilp.Task.hypothesis) =
  t.wiki <- { author; hypothesis } :: t.wiki
