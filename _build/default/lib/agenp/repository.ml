(** The policy repository and representations repository of Figure 2:
    generated policies (strings of the GPM's language) and learned GPM
    representations, versioned. *)

type entry = { version : int; policies : string list }

type t = {
  mutable versions : entry list;  (** newest first *)
  mutable representations : (int * Asg.Gpm.t) list;  (** learned GPMs *)
}

let create () = { versions = []; representations = [] }

let store_policies t policies =
  let version =
    match t.versions with [] -> 1 | e :: _ -> e.version + 1
  in
  t.versions <- { version; policies } :: t.versions;
  version

let latest_policies t =
  match t.versions with [] -> [] | e :: _ -> e.policies

let store_representation t gpm =
  let version =
    match t.representations with [] -> 1 | (v, _) :: _ -> v + 1
  in
  t.representations <- (version, gpm) :: t.representations;
  version

let latest_representation t =
  match t.representations with [] -> None | (_, g) :: _ -> Some g

let version_count t = List.length t.versions
let representation_count t = List.length t.representations
