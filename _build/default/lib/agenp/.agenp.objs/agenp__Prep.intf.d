lib/agenp/prep.mli: Asg Asp Repository
