lib/agenp/pip.mli: Asp
