lib/agenp/prep.ml: Asg Asp List Repository
