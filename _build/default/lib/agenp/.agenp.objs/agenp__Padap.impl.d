lib/agenp/padap.ml: Asg Fun Ilp List
