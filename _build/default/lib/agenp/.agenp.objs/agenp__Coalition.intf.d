lib/agenp/coalition.mli: Ams Ilp
