lib/agenp/coalition.ml: Ams Asg Ilp List Pcp
