lib/agenp/context_repo.ml: Asp List
