lib/agenp/pdp.ml: Asg Asp List
