lib/agenp/metrics.mli: Format Pep
