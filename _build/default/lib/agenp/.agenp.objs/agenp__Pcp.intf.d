lib/agenp/pcp.mli: Asg Asp Format Ilp
