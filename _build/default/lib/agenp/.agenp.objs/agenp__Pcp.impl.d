lib/agenp/pcp.ml: Asg Asp Fmt Ilp List
