lib/agenp/ams.mli: Asg Asp Ilp Padap Pep Prep Repository
