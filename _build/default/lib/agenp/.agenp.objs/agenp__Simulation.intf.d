lib/agenp/simulation.mli: Ams Asp Coalition Format
