lib/agenp/pip.ml: Asp List
