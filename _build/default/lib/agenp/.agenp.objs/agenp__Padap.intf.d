lib/agenp/padap.mli: Asg Ilp
