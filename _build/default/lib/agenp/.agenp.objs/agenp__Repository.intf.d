lib/agenp/repository.mli: Asg
