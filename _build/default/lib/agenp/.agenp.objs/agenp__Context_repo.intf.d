lib/agenp/context_repo.mli: Asp
