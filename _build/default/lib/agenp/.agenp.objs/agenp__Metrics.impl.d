lib/agenp/metrics.ml: Fmt Hashtbl List Option Pdp Pep String
