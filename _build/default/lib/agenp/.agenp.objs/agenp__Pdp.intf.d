lib/agenp/pdp.mli: Asg Asp
