lib/agenp/pep.mli: Asp Pdp
