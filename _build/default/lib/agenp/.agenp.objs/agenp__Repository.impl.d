lib/agenp/repository.ml: Asg List
