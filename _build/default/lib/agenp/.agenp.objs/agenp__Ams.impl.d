lib/agenp/ams.ml: Asp Context_repo Ilp List Logs Option Padap Pdp Pep Pip Prep Random Repository
