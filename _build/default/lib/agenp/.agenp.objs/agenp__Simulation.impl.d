lib/agenp/simulation.ml: Ams Asp Coalition Fmt List Pep
