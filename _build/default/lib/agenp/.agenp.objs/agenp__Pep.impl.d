lib/agenp/pep.ml: Asp List Pdp
