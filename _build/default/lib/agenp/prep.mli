(** The Policy Refinement Point (Figure 2): refines the PBMS's policy
    space characterization into the initial ASG and generates concrete
    policies into the repository. *)

type pbms_spec = {
  grammar_text : string;  (** ASG source: the CFG with seed annotations *)
  global_constraints : string list;
      (** high-level ASP constraints attached to the start production *)
}

val refine : pbms_spec -> Asg.Gpm.t

(** Generate the policies valid in the context and store them; returns
    the stored version and the policies. *)
val generate_policies :
  ?max_depth:int ->
  Asg.Gpm.t ->
  context:Asp.Program.t ->
  Repository.t ->
  int * string list
