(** The context repository (Figure 2): current context, external-fact
    merging, and history. *)

type t

val create : ?capacity:int -> unit -> t
val current : t -> Asp.Program.t
val update : t -> Asp.Program.t -> unit
val merge_external : t -> Asp.Program.t -> unit
val history : t -> Asp.Program.t list

(** Did the context change between the last two snapshots? *)
val changed : t -> bool
