(** The policy repository and representations repository (Figure 2):
    versioned generated policies and learned GPMs. *)

type t

val create : unit -> t
val store_policies : t -> string list -> int
val latest_policies : t -> string list
val store_representation : t -> Asg.Gpm.t -> int
val latest_representation : t -> Asg.Gpm.t option
val version_count : t -> int
val representation_count : t -> int
