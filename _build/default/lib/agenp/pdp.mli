(** The Policy Decision Point: the first preference-ordered option valid
    in the context; the last option as a flagged fail-safe. *)

type decision = {
  chosen : string;
  valid_options : string list;
  fallback_used : bool;
}

val decide :
  Asg.Gpm.t -> context:Asp.Program.t -> options:string list -> decision
