(** The context repository of Figure 2: the AMS's view of its operating
    context, merged from local observations and the Policy Information
    Point's external facts, with history retained for adaptation
    decisions. *)

type t = {
  mutable current : Asp.Program.t;
  mutable history : Asp.Program.t list;  (** newest first *)
  mutable capacity : int;
}

let create ?(capacity = 256) () =
  { current = Asp.Program.empty; history = []; capacity }

let current t = t.current

let update t ctx =
  t.history <- t.current :: t.history;
  if List.length t.history > t.capacity then
    t.history <-
      List.filteri (fun i _ -> i < t.capacity) t.history;
  t.current <- ctx

(** Merge external facts (from the PIP) into the current context. *)
let merge_external t (facts : Asp.Program.t) =
  t.current <- Asp.Program.append t.current facts

let history t = t.history

(** Has the context changed between the last two snapshots? Triggers
    PAdaP re-evaluation. *)
let changed t =
  match t.history with
  | [] -> false
  | prev :: _ ->
    Asp.Program.to_string prev <> Asp.Program.to_string t.current
