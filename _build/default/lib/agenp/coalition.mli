(** Multi-party policy sharing (Section III-A3 / CASWiki): a shared
    repository of learned hypotheses; peers adopt what their PCP
    validates. *)

type shared_entry = { author : string; hypothesis : Ilp.Task.hypothesis }

type t

val create : unit -> t
val add_member : t -> Ams.t -> unit
val members : t -> Ams.t list
val wiki_size : t -> int

(** Publish a member's current hypothesis. *)
val share : t -> Ams.t -> unit

(** [`Pcp] validates foreign rules against local evidence; [`Trust_all]
    installs everything (the Byzantine baseline). *)
type gate = [ `Pcp | `Trust_all ]

(** Pull foreign rules into a member; returns the number adopted. *)
val adopt : ?gate:gate -> t -> Ams.t -> int

(** Everyone shares, then everyone adopts. *)
val gossip_round : ?gate:gate -> t -> int

(** Publish an arbitrary hypothesis (models a compromised member). *)
val publish_raw : t -> author:string -> Ilp.Task.hypothesis -> unit
