(** Operational metrics over the PEP's monitoring log. *)

type summary = {
  requests : int;
  compliance : float;
  fallback_rate : float;  (** decisions where no option was valid *)
  decision_mix : (string * int) list;
  recent_compliance : float;
}

val summarize : ?window:int -> Pep.t -> summary
val pp : Format.formatter -> summary -> unit
