(** The Policy Information Point: pluggable external-context sources
    merged into the local context (Section III-A3). *)

type t

val create : unit -> t
val register : t -> string -> (unit -> Asp.Program.t) -> unit
val poll_all : t -> Asp.Program.t
val source_names : t -> string list
