(** Statistical guidance for the symbolic search (Section V-C): "one can
    learn strategies to best search the hypothesis space".

    Before the (expensive) symbolic search runs, each candidate rule is
    scored by a cheap statistical signal: how well its {e context
    conditions} (the body minus the decision literal) discriminate
    between positive and negative example contexts. Each example context
    is evaluated once — together with the grammar's root background
    knowledge — into a model; a candidate's conditions either hold in
    that model or not, giving per-candidate firing frequencies on the
    two classes. Scores order the space (informative candidates first)
    and optionally prune it. Pruning trades exactness for speed — the
    statistical side only steers where the sound symbolic learner looks,
    exactly the supporting role the paper assigns it. *)

(** The context model of an example: context program + the grammar's
    root-production annotation instantiated at the root trace (background
    knowledge such as LOA requirement tables lives there). *)
let context_model (gpm : Asg.Gpm.t) (e : Example.t) : Asp.Solver.model option =
  let root_id =
    match Grammar.Cfg.productions_of (Asg.Gpm.cfg gpm) (Grammar.Cfg.start (Asg.Gpm.cfg gpm)) with
    | p :: _ -> p.Grammar.Production.id
    | [] -> 0
  in
  let background =
    List.filter
      (fun (r : Asg.Annotation.rule) ->
        match r.Asg.Annotation.head with
        | Asg.Annotation.Head _ -> true
        | Asg.Annotation.Falsity | Asg.Annotation.Weak _
        | Asg.Annotation.Choice _ ->
          false)
      (Asg.Gpm.annotation gpm root_id)
  in
  let program =
    Asp.Program.append e.Example.context
      (Asp.Program.of_rules (Asg.Annotation.instantiate_program [] background))
  in
  Asp.Solver.first_answer_set program

(** A candidate's context conditions as a plain ASP body: site-annotated
    literals (the decision) are dropped; the rest is instantiated at the
    root trace. *)
let context_conditions (c : Hypothesis_space.candidate) :
    Asp.Rule.body_elt list =
  c.Hypothesis_space.rule.Asg.Annotation.body
  |> List.filter_map (fun elt ->
         match elt with
         | Asg.Annotation.Pos { Asg.Annotation.site = Some _; _ }
         | Asg.Annotation.Neg { Asg.Annotation.site = Some _; _ } ->
           None
         | Asg.Annotation.Pos ({ Asg.Annotation.site = None; _ } as a) ->
           Some (Asp.Rule.Pos (Asg.Annotation.instantiate_atom [] a))
         | Asg.Annotation.Neg ({ Asg.Annotation.site = None; _ } as a) ->
           Some (Asp.Rule.Neg (Asg.Annotation.instantiate_atom [] a))
         | Asg.Annotation.Cmp (op, t1, t2) -> Some (Asp.Rule.Cmp (op, t1, t2)))

(** Discriminativeness of every candidate: |P(fires | negative context) −
    P(fires | positive context)|. Candidates whose conditions never fire
    anywhere score −1 (they are dead weight). *)
let scores (t : Task.t) : (Hypothesis_space.candidate * float) list =
  let labelled_models =
    List.filter_map
      (fun e ->
        Option.map (fun m -> (Example.is_positive e, m)) (context_model t.Task.gpm e))
      t.Task.examples
  in
  let pos = List.filter fst labelled_models
  and neg = List.filter (fun (p, _) -> not p) labelled_models in
  let n_pos = max 1 (List.length pos) and n_neg = max 1 (List.length neg) in
  List.map
    (fun c ->
      let conds = context_conditions c in
      let fires models =
        List.length
          (List.filter (fun (_, m) -> Asp.Query.body_holds m conds) models)
      in
      let fp = fires pos and fn = fires neg in
      let score =
        if fp = 0 && fn = 0 then -1.0
        else
          Float.abs
            ((float_of_int fn /. float_of_int n_neg)
            -. (float_of_int fp /. float_of_int n_pos))
      in
      (c, score))
    t.Task.space

(** Reorder the hypothesis space, most promising candidates first (score
    descending, cost ascending on ties). The learner's optimum is
    unchanged — only its search order is. *)
let rank (t : Task.t) : Task.t =
  let space =
    scores t
    |> List.stable_sort (fun (c1, s1) (c2, s2) ->
           let c = Float.compare s2 s1 in
           if c <> 0 then c
           else Int.compare c1.Hypothesis_space.cost c2.Hypothesis_space.cost)
    |> List.map fst
  in
  { t with Task.space }

(** Keep only the [fraction] most promising candidates. Heuristic: the
    optimum may be pruned away — the measured trade-off is part of the
    PERF benchmark. *)
let prune ~(fraction : float) (t : Task.t) : Task.t =
  let ranked = rank t in
  let n = List.length ranked.Task.space in
  let keep = max 1 (int_of_float (ceil (fraction *. float_of_int n))) in
  { ranked with Task.space = List.filteri (fun i _ -> i < keep) ranked.Task.space }
