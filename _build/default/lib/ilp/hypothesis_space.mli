(** The hypothesis space [S_M]: candidate annotation rules, each tagged
    with the production it would extend (Definition 3's ⟨h, pr_id⟩ pairs)
    and a cost (literal count) for minimal-cost learning. *)

type candidate = {
  rule : Asg.Annotation.rule;
  prod_id : int;
  cost : int;
}

type t = candidate list

(** Default cost of a rule: its literal count. *)
val rule_cost : Asg.Annotation.rule -> int

(** [candidate rule prod_id] with an optional cost override. *)
val candidate : ?cost:int -> Asg.Annotation.rule -> int -> candidate

(** Explicit space: annotation-rule source text plus target productions. *)
val of_rules : (string * int list) list -> t

(** Safety of an annotation rule (sites erased, then ASP safety). *)
val rule_is_safe : Asg.Annotation.rule -> bool

(** Is the candidate's rule a constraint (empty head)? The exact
    set-cover engine applies only to all-constraint spaces. *)
val is_constraint_candidate : candidate -> bool

(** Generate the space described by a mode bias; unsafe and duplicate
    rules are dropped. *)
val generate : Mode.t -> t

(** Number of candidates. *)
val size : t -> int

val pp_candidate : Format.formatter -> candidate -> unit
val pp : Format.formatter -> t -> unit
