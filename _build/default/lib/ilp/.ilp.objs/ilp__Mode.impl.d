lib/ilp/mode.ml: Asg Asp List
