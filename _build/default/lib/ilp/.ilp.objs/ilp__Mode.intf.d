lib/ilp/mode.mli: Asg Asp
