lib/ilp/example.ml: Asp Fmt List String
