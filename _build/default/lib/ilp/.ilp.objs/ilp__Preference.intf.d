lib/ilp/preference.mli: Asg Asp Hypothesis_space Task
