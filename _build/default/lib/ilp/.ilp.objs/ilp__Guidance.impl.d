lib/ilp/guidance.ml: Asg Asp Example Float Grammar Hypothesis_space Int List Option Task
