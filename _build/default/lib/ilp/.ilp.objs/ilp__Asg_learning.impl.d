lib/ilp/asg_learning.ml: Asg Example Fmt Hypothesis_space Learner List Task
