lib/ilp/task.ml: Asg Example Fmt Hypothesis_space List
