lib/ilp/example.mli: Asp Format
