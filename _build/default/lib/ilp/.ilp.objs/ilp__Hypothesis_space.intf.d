lib/ilp/hypothesis_space.mli: Asg Format Mode
