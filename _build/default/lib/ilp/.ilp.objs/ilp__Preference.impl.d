lib/ilp/preference.ml: Array Asg Asp Grammar Hashtbl Hypothesis_space Int List Map Option Task
