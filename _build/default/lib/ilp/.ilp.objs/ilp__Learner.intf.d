lib/ilp/learner.mli: Asg Asp Example Format Hypothesis_space Task
