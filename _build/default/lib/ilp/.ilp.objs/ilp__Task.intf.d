lib/ilp/task.mli: Asg Example Format Hypothesis_space
