lib/ilp/hypothesis_space.ml: Asg Asp Fmt Hashtbl List Mode Option
