lib/ilp/asg_learning.mli: Asg Example Hypothesis_space Learner Task
