lib/ilp/learner.ml: Array Asg Asp Example Fmt Fun Grammar Hashtbl Hypothesis_space Int List Map Option Sys Task
