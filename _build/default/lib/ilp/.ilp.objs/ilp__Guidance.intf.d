lib/ilp/guidance.mli: Asg Asp Example Hypothesis_space Task
