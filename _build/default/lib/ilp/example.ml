(** Context-dependent examples (Definition 3 of the paper): a pair
    [⟨s, C⟩] of a policy string and an ASP context program, labelled
    positive ([s] must be in [L(G(C):H)]) or negative ([s] must not be).

    Each example carries a penalty weight used by the noise-tolerant
    learner: sacrificing the example (leaving it uncovered) costs its
    weight; covering it costs nothing. An infinite weight (the default)
    makes the example hard. *)

type label = Positive | Negative

type t = {
  sentence : string;
  context : Asp.Program.t;
  label : label;
  weight : int option;  (** [None] = hard example (may not be sacrificed) *)
}

let positive ?weight ?(context = Asp.Program.empty) sentence =
  { sentence; context; label = Positive; weight }

let negative ?weight ?(context = Asp.Program.empty) sentence =
  { sentence; context; label = Negative; weight }

(** Positive example with the context given as ASP source text. *)
let positive_ctx ?weight sentence ctx =
  positive ?weight ~context:(Asp.Parser.parse_program ctx) sentence

let negative_ctx ?weight sentence ctx =
  negative ?weight ~context:(Asp.Parser.parse_program ctx) sentence

let is_positive e = e.label = Positive
let is_hard e = e.weight = None

let pp ppf e =
  Fmt.pf ppf "%s⟨%S | %s⟩"
    (match e.label with Positive -> "+" | Negative -> "-")
    e.sentence
    (String.concat " "
       (List.map Asp.Rule.to_string (Asp.Program.rules e.context)))

let to_string e = Fmt.str "%a" pp e
