(** The context-dependent ASG learning task (Definition 3): an initial
    grammar, a hypothesis space, and labelled context-dependent examples.
    An inductive solution is a hypothesis [H ⊆ S_M] such that every
    positive [⟨s,C⟩] has [s ∈ L(G(C):H)] and every negative one has
    [s ∉ L(G(C):H)]. *)

type t = {
  gpm : Asg.Gpm.t;
  space : Hypothesis_space.t;
  examples : Example.t list;
}

type hypothesis = Hypothesis_space.candidate list

let make ~gpm ~space ~examples = { gpm; space; examples }

let positives t = List.filter Example.is_positive t.examples
let negatives t = List.filter (fun e -> not (Example.is_positive e)) t.examples

let hypothesis_cost (h : hypothesis) =
  List.fold_left (fun acc c -> acc + c.Hypothesis_space.cost) 0 h

(** [G : H] — the grammar extended with a hypothesis. *)
let apply_hypothesis (gpm : Asg.Gpm.t) (h : hypothesis) : Asg.Gpm.t =
  Asg.Gpm.with_hypothesis gpm
    (List.map (fun c -> (c.Hypothesis_space.prod_id, c.Hypothesis_space.rule)) h)

(** Coverage of one example by a (hypothesis-extended) grammar. *)
let covers (gpm : Asg.Gpm.t) (e : Example.t) : bool =
  let accepted =
    Asg.Membership.accepts_in_context gpm ~context:e.Example.context
      e.Example.sentence
  in
  match e.Example.label with
  | Example.Positive -> accepted
  | Example.Negative -> not accepted

(** Reference (slow) check that [h] is an inductive solution — used by
    tests to validate the optimized search. *)
let is_solution (t : t) (h : hypothesis) : bool =
  let extended = apply_hypothesis t.gpm h in
  List.for_all (covers extended) t.examples

let pp ppf t =
  Fmt.pf ppf "task: %d candidates, %d positive, %d negative"
    (Hypothesis_space.size t.space)
    (List.length (positives t))
    (List.length (negatives t))
