(** Learning value functions from ordering examples — the preference
    counterpart of Definition 3 (ILASP's context-dependent ordering
    examples). An ordering example ⟨s₁ ≻ s₂, C⟩ states that in context C
    policy s₁ should cost strictly less than s₂ under the learned weak
    constraints; ⟨s₁ ≽ s₂, C⟩ demands no more. The learner searches the
    weak-constraint hypothesis space (cheapest subsets first) for one that
    satisfies every ordering, pricing each candidate on each sentence's
    witnesses via {!Asp.Query.weak_cost}. *)

type ordering = {
  better : string;
  worse : string;
  context : Asp.Program.t;
  strict : bool;
}

let prefer ?(strict = true) ?(context = Asp.Program.empty) better worse =
  { better; worse; context; strict }

let prefer_ctx ?strict better worse ctx =
  prefer ?strict ~context:(Asp.Parser.parse_program ctx) better worse

(** Witness models of a sentence under a context (valid parse trees'
    answer sets). *)
let sentence_models ?(max_models = 16) (gpm : Asg.Gpm.t)
    ~(context : Asp.Program.t) (sentence : string) : Asp.Solver.model list =
  let g = Asg.Gpm.with_context gpm context in
  let tokens = Asg.Membership.tokenize sentence in
  List.concat_map
    (fun tree ->
      Asp.Solver.solve ~limit:max_models (Asg.Tree_program.program g tree))
    (Grammar.Earley.parses (Asg.Gpm.cfg g) tokens)

(** Per-candidate cost contributions on each witness of a sentence. A
    candidate weak rule is instantiated at every node of the witness's
    tree; here sentences are priced against full witness models, so the
    instantiation happens at the root-relative traces recorded in the
    model's mangled atoms — we instantiate at all traces of the
    candidate's production in each parse tree. *)
let contributions (gpm : Asg.Gpm.t) (space : Hypothesis_space.t)
    ~(context : Asp.Program.t) (sentence : string) : int array list =
  let g = Asg.Gpm.with_context gpm context in
  let tokens = Asg.Membership.tokenize sentence in
  List.concat_map
    (fun tree ->
      let traces_by_prod =
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun (trace, (p : Grammar.Production.t), _) ->
            let id = p.Grammar.Production.id in
            Hashtbl.replace tbl id
              (trace :: Option.value ~default:[] (Hashtbl.find_opt tbl id)))
          (Grammar.Parse_tree.nodes_with_traces tree);
        tbl
      in
      let models =
        Asp.Solver.solve ~limit:16 (Asg.Tree_program.program g tree)
      in
      List.map
        (fun model ->
          Array.of_list
            (List.map
               (fun (c : Hypothesis_space.candidate) ->
                 let traces =
                   Option.value ~default:[]
                     (Hashtbl.find_opt traces_by_prod c.prod_id)
                 in
                 List.fold_left
                   (fun acc trace ->
                     acc
                     + Asp.Query.weak_cost model
                         (Asg.Annotation.instantiate_rule trace c.rule))
                   0 traces)
               space))
        models)
    (Grammar.Earley.parses (Asg.Gpm.cfg g) tokens)

type outcome = {
  hypothesis : Task.hypothesis;
  cost : int;  (** total cost of hypothesis rules (minimality) *)
  checked : int;  (** subsets examined *)
}

(** Learn a minimal-cost set of weak constraints satisfying every ordering
    example. Each sentence's cost under a hypothesis is the minimum over
    its witnesses of the summed contributions. Returns [None] when no
    subset of the space (within [max_subsets]) satisfies the orderings. *)
let learn ?(max_subsets = 50_000) ~(gpm : Asg.Gpm.t)
    ~(space : Hypothesis_space.t) ~(orderings : ordering list) () :
    outcome option =
  let candidates = Array.of_list space in
  let n = Array.length candidates in
  (* precompute per-ordering contribution tables *)
  let tables =
    List.map
      (fun o ->
        ( o,
          contributions gpm space ~context:o.context o.better,
          contributions gpm space ~context:o.context o.worse ))
      orderings
  in
  let sentence_cost (chosen : int list) (rows : int array list) : int option =
    match rows with
    | [] -> None (* sentence not even valid: ordering unsatisfiable *)
    | _ ->
      Some
        (List.fold_left
           (fun acc row ->
             let c = List.fold_left (fun s ci -> s + row.(ci)) 0 chosen in
             min acc c)
           max_int rows)
  in
  let satisfies chosen =
    List.for_all
      (fun (o, better_rows, worse_rows) ->
        match (sentence_cost chosen better_rows, sentence_cost chosen worse_rows) with
        | Some cb, Some cw -> if o.strict then cb < cw else cb <= cw
        | _ -> false)
      tables
  in
  (* best-first over subsets by total rule cost *)
  let module M = Map.Make (Int) in
  let pq = ref M.empty in
  let push cost v =
    pq := M.update cost (fun l -> Some (v :: Option.value ~default:[] l)) !pq
  in
  let pop () =
    match M.min_binding_opt !pq with
    | None -> None
    | Some (cost, v :: rest) ->
      if rest = [] then pq := M.remove cost !pq else pq := M.add cost rest !pq;
      Some (cost, v)
    | Some (cost, []) ->
      pq := M.remove cost !pq;
      None
  in
  push 0 (0, []);
  let checked = ref 0 in
  let rec loop () =
    if !checked >= max_subsets then None
    else
      match pop () with
      | None -> None
      | Some (cost, (next, chosen_rev)) ->
        incr checked;
        let chosen = List.rev chosen_rev in
        if satisfies chosen then
          Some
            {
              hypothesis = List.map (fun i -> candidates.(i)) chosen;
              cost;
              checked = !checked;
            }
        else begin
          for i = next to n - 1 do
            push (cost + candidates.(i).Hypothesis_space.cost) (i + 1, i :: chosen_rev)
          done;
          loop ()
        end
  in
  loop ()
