(** Mode declarations: a compact description of the learnable rule space,
    in the spirit of ILASP's mode bias. A mode atom gives a predicate
    schema whose argument slots are filled either by enumerated constants
    or by typed variables; two slots with the same type name share one
    variable. A schema may be annotated with a child site ([@i]) and may
    appear negated in bodies. *)

type arg =
  | Constants of string list  (** one instantiation per constant *)
  | Variable of string  (** a typed variable; same type = same variable *)
  | Integer of int list  (** one instantiation per integer *)

type matom = {
  pred : string;
  args : arg list;
  site : int option;
  negated : bool;  (** body occurrence under negation as failure *)
  required : bool;
      (** rules must contain at least one atom marked required (when any
          mode atom is marked) — typically the decision literal *)
}

let matom ?(site = None) ?(negated = false) ?(required = false) pred args =
  { pred; args; site; negated; required }

(** A comparison operand used in comparison schemas and weak-constraint
    weights. *)
type operand = VarOperand of string | IntOperand of int

(** A head schema: constraints (restricting a policy language), a defined
    atom, or a weak constraint whose weight is a typed variable or
    integer (learning value functions from ordering examples). *)
type mhead = Constraint | HeadAtom of matom | WeakHead of operand

let operand_to_term = function
  | VarOperand ty -> Asp.Term.var ("V_" ^ ty)
  | IntOperand n -> Asp.Term.int n

(** A comparison schema between two typed variables (or a variable and an
    integer constant): e.g. [(Lt, "v", VarOperand "r")] generates
    [V_v < V_r] in rules where both types are bound. *)
type mcmp = Asp.Rule.cmp_op * string * operand

type t = {
  target_prods : int list;  (** production ids rules may attach to *)
  heads : mhead list;
  bodies : matom list;
  cmps : mcmp list;  (** optional comparison literals *)
  max_body : int;  (** maximum number of body literals per rule *)
}

let make ?(cmps = []) ~target_prods ~heads ~bodies ~max_body () =
  { target_prods; heads; bodies; cmps; max_body }

let cmp_to_body_elt ((op, ty1, rhs) : mcmp) : Asg.Annotation.body_elt =
  Asg.Annotation.Cmp (op, Asp.Term.var ("V_" ^ ty1), operand_to_term rhs)

(** Instantiations of one mode atom: cross product of constant slots, with
    typed variables named ["V_" ^ type]. *)
let instantiate_matom (m : matom) : Asg.Annotation.aatom list =
  let slot_choices =
    List.map
      (function
        | Constants cs -> List.map (fun c -> Asp.Term.const c) cs
        | Variable ty -> [ Asp.Term.var ("V_" ^ ty) ]
        | Integer is -> List.map (fun i -> Asp.Term.int i) is)
      m.args
  in
  let rec cross = function
    | [] -> [ [] ]
    | choices :: rest ->
      let tails = cross rest in
      List.concat_map (fun c -> List.map (fun tl -> c :: tl) tails) choices
  in
  List.map
    (fun args ->
      { Asg.Annotation.atom = Asp.Atom.make m.pred args; site = m.site })
    (cross slot_choices)
