(** Statistical guidance for the symbolic search (Section V-C): score
    candidates by how well their context conditions discriminate positive
    from negative example contexts; reorder or prune the space before the
    sound symbolic learner runs. *)

(** One context model per example (context + root background knowledge). *)
val context_model : Asg.Gpm.t -> Example.t -> Asp.Solver.model option

(** The candidate's body minus decision-site literals, as plain ASP. *)
val context_conditions :
  Hypothesis_space.candidate -> Asp.Rule.body_elt list

(** Discriminativeness of every candidate:
    |P(fires | negative) − P(fires | positive)|; −1 for dead candidates. *)
val scores : Task.t -> (Hypothesis_space.candidate * float) list

(** Reorder the space, most promising first; the optimum is unchanged. *)
val rank : Task.t -> Task.t

(** Keep only the top [fraction] of candidates. Heuristic: may prune the
    optimum. *)
val prune : fraction:float -> Task.t -> Task.t
