(** Mode declarations — the ILASP-style bias describing the learnable
    rule space: predicate schemas whose slots are constants, typed
    variables (equal types share a variable) or integers, optionally
    negated, optionally site-annotated, plus comparison schemas. *)

type arg =
  | Constants of string list  (** one instantiation per constant *)
  | Variable of string  (** typed variable; same type = same variable *)
  | Integer of int list  (** one instantiation per integer *)

type matom = {
  pred : string;
  args : arg list;
  site : int option;
  negated : bool;
  required : bool;
      (** rules must contain at least one atom marked required (when any
          mode atom is marked) — typically the decision literal *)
}

(** [matom pred args] builds a body-mode schema (not negated, not
    required, no site by default). *)
val matom :
  ?site:int option -> ?negated:bool -> ?required:bool -> string -> arg list ->
  matom

(** A weak-constraint weight: a typed variable or a literal integer. *)
type operand = VarOperand of string | IntOperand of int

(** Allowed rule heads: constraints, atom heads, or weak constraints with
    the given weight. *)
type mhead = Constraint | HeadAtom of matom | WeakHead of operand

val operand_to_term : operand -> Asp.Term.t

(** Comparison schema between a typed variable and an operand. *)
type mcmp = Asp.Rule.cmp_op * string * operand

type t = {
  target_prods : int list;
  heads : mhead list;
  bodies : matom list;
  cmps : mcmp list;
  max_body : int;
}

val make :
  ?cmps:mcmp list ->
  target_prods:int list ->
  heads:mhead list ->
  bodies:matom list ->
  max_body:int ->
  unit ->
  t

(** All instantiations of a mode atom (cross product of constant slots;
    typed variables become [V_<type>]). *)
val instantiate_matom : matom -> Asg.Annotation.aatom list

val cmp_to_body_elt : mcmp -> Asg.Annotation.body_elt
