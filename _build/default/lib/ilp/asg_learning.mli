(** The Figure-1 workflow: initial GPM + examples → learner → learned
    GPM, plus the accuracy metric of the paper's CAV comparison. *)

type learned = {
  gpm : Asg.Gpm.t;  (** the learned generative policy model *)
  outcome : Learner.outcome;
}

val learn_gpm : ?max_witnesses:int -> Task.t -> learned option

val learn :
  ?max_witnesses:int ->
  gpm:Asg.Gpm.t ->
  space:Hypothesis_space.t ->
  examples:Example.t list ->
  unit ->
  learned option

(** Fraction of examples whose membership matches their label. *)
val accuracy : Asg.Gpm.t -> Example.t list -> float

val hypothesis_text : learned -> string list
