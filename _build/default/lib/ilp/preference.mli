(** Learning value functions from context-dependent ordering examples —
    the preference counterpart of Definition 3 (ILASP's ordering
    examples): find a minimal set of weak-constraint annotations under
    which every "s₁ preferred to s₂ in context C" example holds. *)

type ordering = {
  better : string;
  worse : string;
  context : Asp.Program.t;
  strict : bool;  (** strictly cheaper, vs. no more expensive *)
}

val prefer :
  ?strict:bool -> ?context:Asp.Program.t -> string -> string -> ordering

(** Context given as ASP source text. *)
val prefer_ctx : ?strict:bool -> string -> string -> string -> ordering

(** Witness models of a sentence under a context. *)
val sentence_models :
  ?max_models:int ->
  Asg.Gpm.t ->
  context:Asp.Program.t ->
  string ->
  Asp.Solver.model list

(** Per-witness cost contribution of every candidate on a sentence. *)
val contributions :
  Asg.Gpm.t ->
  Hypothesis_space.t ->
  context:Asp.Program.t ->
  string ->
  int array list

type outcome = {
  hypothesis : Task.hypothesis;
  cost : int;  (** total cost of hypothesis rules (minimality) *)
  checked : int;  (** subsets examined *)
}

(** Minimal-cost weak-constraint set satisfying every ordering; [None]
    when no subset within [max_subsets] does. *)
val learn :
  ?max_subsets:int ->
  gpm:Asg.Gpm.t ->
  space:Hypothesis_space.t ->
  orderings:ordering list ->
  unit ->
  outcome option
