(* The agenp command-line tool: solve ASP programs, check/generate/learn
   answer set grammars, and explain decisions — all from files.

   File formats:
   - ASP programs / contexts: plain ASP text (see lib/asp/parser.ml).
   - Grammars: the ASG syntax of lib/asg/asg_parser.ml.
   - Examples: one per line, [+ sentence | context-program] for positive
     and [- sentence | context-program] for negative (context optional).
   - Hypothesis spaces: one per line, [prod_ids | annotated-rule], e.g.
     [0 | :- result(accept)@1, weather(snow).]. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_context = function
  | None -> Asp.Program.empty
  | Some path -> Asp.Parser.parse_program (read_file path)

let parse_examples_file path : Ilp.Example.t list =
  read_file path
  |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else begin
           let label, rest =
             match line.[0] with
             | '+' -> (`Pos, String.sub line 1 (String.length line - 1))
             | '-' -> (`Neg, String.sub line 1 (String.length line - 1))
             | _ ->
               failwith
                 (Printf.sprintf "example line must start with + or -: %s" line)
           in
           let sentence, ctx =
             match String.index_opt rest '|' with
             | None -> (String.trim rest, "")
             | Some i ->
               ( String.trim (String.sub rest 0 i),
                 String.sub rest (i + 1) (String.length rest - i - 1) )
           in
           let context = Asp.Parser.parse_program ctx in
           Some
             (match label with
             | `Pos -> Ilp.Example.positive ~context sentence
             | `Neg -> Ilp.Example.negative ~context sentence)
         end)

let parse_space_file path : Ilp.Hypothesis_space.t =
  read_file path
  |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line '|' with
           | None ->
             failwith
               (Printf.sprintf "space line must be 'prods | rule': %s" line)
           | Some i ->
             let prods =
               String.sub line 0 i |> String.split_on_char ' '
               |> List.filter_map (fun s ->
                      match int_of_string_opt (String.trim s) with
                      | Some n -> Some n
                      | None -> None)
             in
             let rule = String.sub line (i + 1) (String.length line - i - 1) in
             Some (String.trim rule, prods))
  |> fun entries -> Ilp.Hypothesis_space.of_rules entries

(* ---- commands --------------------------------------------------------- *)

let solve_cmd file models optimal =
  let program = Asp.Parser.parse_program (read_file file) in
  if optimal then begin
    match Asp.Solver.solve_optimal program with
    | None ->
      Fmt.pr "UNSATISFIABLE@.";
      1
    | Some (ms, cost) ->
      List.iter
        (fun m -> Fmt.pr "Optimal (cost %d): %s@." cost (Asp.Solver.model_to_string m))
        ms;
      0
  end
  else begin
    match Asp.Solver.solve ?limit:models program with
    | [] ->
      Fmt.pr "UNSATISFIABLE@.";
      1
    | ms ->
      List.iteri
        (fun i m -> Fmt.pr "Answer %d: %s@." (i + 1) (Asp.Solver.model_to_string m))
        ms;
      0
  end

let ground_cmd file =
  let program = Asp.Parser.parse_program (read_file file) in
  let gp = Asp.Grounder.ground program in
  List.iter (Fmt.pr "%a@." Asp.Grounder.pp_ground_rule) gp.Asp.Grounder.grules;
  Fmt.pr "%% %d atoms, %d ground rules@."
    (Asp.Grounder.atom_count gp) (Asp.Grounder.size gp);
  0

let check_cmd grammar sentence context =
  let gpm = Asg.Asg_parser.parse (read_file grammar) in
  let context = load_context context in
  if Asg.Membership.accepts_in_context gpm ~context sentence then begin
    Fmt.pr "VALID@.";
    0
  end
  else begin
    Fmt.pr "INVALID@.";
    1
  end

let generate_cmd grammar context depth ranked =
  let gpm = Asg.Asg_parser.parse (read_file grammar) in
  let context = load_context context in
  if ranked then
    List.iter
      (fun (s, c) -> Fmt.pr "%s [cost %d]@." s c)
      (Asg.Language.ranked_sentences_in_context ~max_depth:depth gpm ~context)
  else
    List.iter (Fmt.pr "%s@.")
      (Asg.Language.sentences_in_context ~max_depth:depth gpm ~context);
  0

let learn_cmd grammar examples space save =
  let gpm = Asg.Asg_parser.parse (read_file grammar) in
  let examples = parse_examples_file examples in
  let space = parse_space_file space in
  match Ilp.Asg_learning.learn ~gpm ~space ~examples () with
  | None ->
    Fmt.pr "UNSATISFIABLE (no inductive solution)@.";
    1
  | Some learned ->
    List.iter (Fmt.pr "%s@.") (Ilp.Asg_learning.hypothesis_text learned);
    Fmt.pr "%% cost %d, penalty %d@."
      learned.Ilp.Asg_learning.outcome.Ilp.Learner.cost
      learned.Ilp.Asg_learning.outcome.Ilp.Learner.penalty;
    (match save with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Asg.Asg_parser.render learned.Ilp.Asg_learning.gpm);
      close_out oc;
      Fmt.pr "%% learned grammar written to %s@." path);
    0

let explain_cmd grammar sentence context =
  let gpm = Asg.Asg_parser.parse (read_file grammar) in
  let context = load_context context in
  if Asg.Membership.accepts_in_context gpm ~context sentence then begin
    (match Explain.Why.why gpm ~context sentence with
    | Some m -> Fmt.pr "VALID, witness: %s@." (Asp.Solver.model_to_string m)
    | None -> Fmt.pr "VALID@.");
    0
  end
  else begin
    Fmt.pr "INVALID: %s@."
      (Explain.Why.why_not_to_string (Explain.Why.why_not gpm ~context sentence));
    1
  end

let repl_cmd () =
  Fmt.pr "agenp ASP repl — enter rules ending with '.', then:@.";
  Fmt.pr "  :solve [n]   answer sets (up to n)@.";
  Fmt.pr "  :optimal     optimal answer sets@.";
  Fmt.pr "  :ground      show the ground program@.";
  Fmt.pr "  :list        show the program@.";
  Fmt.pr "  :clear       start over@.";
  Fmt.pr "  :quit        leave@.";
  let program = ref Asp.Program.empty in
  let rec loop () =
    Fmt.pr "> @?";
    match In_channel.input_line stdin with
    | None -> 0
    | Some line -> (
      let line = String.trim line in
      match String.split_on_char ' ' line with
      | [ "" ] -> loop ()
      | ":quit" :: _ -> 0
      | ":clear" :: _ ->
        program := Asp.Program.empty;
        loop ()
      | ":list" :: _ ->
        Fmt.pr "%a@." Asp.Program.pp !program;
        loop ()
      | ":ground" :: _ ->
        (try
           let gp = Asp.Grounder.ground !program in
           List.iter
             (Fmt.pr "%a@." Asp.Grounder.pp_ground_rule)
             gp.Asp.Grounder.grules
         with
        | Asp.Grounder.Unsafe_rule r ->
          Fmt.pr "unsafe rule: %a@." Asp.Rule.pp r);
        loop ()
      | ":solve" :: rest ->
        let limit =
          match rest with n :: _ -> int_of_string_opt n | [] -> None
        in
        (try
           match Asp.Solver.solve ?limit !program with
           | [] -> Fmt.pr "UNSATISFIABLE@."
           | ms ->
             List.iteri
               (fun i m ->
                 Fmt.pr "Answer %d: %s@." (i + 1) (Asp.Solver.model_to_string m))
               ms
         with
        | Asp.Grounder.Unsafe_rule r ->
          Fmt.pr "unsafe rule: %a@." Asp.Rule.pp r);
        loop ()
      | ":optimal" :: _ ->
        (try
           match Asp.Solver.solve_optimal !program with
           | None -> Fmt.pr "UNSATISFIABLE@."
           | Some (ms, cost) ->
             List.iter
               (fun m ->
                 Fmt.pr "Optimal (cost %d): %s@." cost
                   (Asp.Solver.model_to_string m))
               ms
         with
        | Asp.Grounder.Unsafe_rule r ->
          Fmt.pr "unsafe rule: %a@." Asp.Rule.pp r);
        loop ()
      | _ -> (
        match Asp.Parser.parse_program line with
        | p ->
          program := Asp.Program.append !program p;
          loop ()
        | exception Asp.Parser.Parse_error msg ->
          Fmt.pr "parse error: %s@." msg;
          loop ()
        | exception Asp.Lexer.Lex_error (msg, pos) ->
          Fmt.pr "lex error at %d: %s@." pos msg;
          loop ()))
  in
  loop ()

(* ---- cmdliner wiring --------------------------------------------------- *)

open Cmdliner

let file_arg ~doc n name = Arg.(required & pos n (some file) None & info [] ~docv:name ~doc)

let context_opt =
  Arg.(value & opt (some file) None & info [ "context"; "c" ] ~docv:"FILE"
         ~doc:"ASP program providing the context facts/rules.")

let solve_t =
  let models =
    Arg.(value & opt (some int) None & info [ "models"; "n" ] ~docv:"N"
           ~doc:"Stop after N answer sets.")
  in
  let optimal =
    Arg.(value & flag & info [ "optimal" ] ~doc:"Report only optimal models \
                                                 (weak-constraint cost).")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Compute the answer sets of an ASP program.")
    Term.(const solve_cmd $ file_arg ~doc:"ASP program file." 0 "FILE" $ models $ optimal)

let ground_t =
  Cmd.v
    (Cmd.info "ground" ~doc:"Print the ground instantiation of an ASP program.")
    Term.(const ground_cmd $ file_arg ~doc:"ASP program file." 0 "FILE")

let sentence_arg n =
  Arg.(required & pos n (some string) None & info [] ~docv:"SENTENCE"
         ~doc:"Policy sentence (tokens separated by spaces).")

let check_t =
  Cmd.v
    (Cmd.info "check" ~doc:"Check membership of a sentence in an ASG's language.")
    Term.(const check_cmd $ file_arg ~doc:"ASG grammar file." 0 "GRAMMAR"
          $ sentence_arg 1 $ context_opt)

let generate_t =
  let depth =
    Arg.(value & opt int 8 & info [ "depth"; "d" ] ~docv:"N"
           ~doc:"Maximum derivation depth.")
  in
  let ranked =
    Arg.(value & flag & info [ "ranked" ] ~doc:"Rank sentences by \
                                                weak-constraint cost.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate the valid policies of an ASG (optionally in a context).")
    Term.(const generate_cmd $ file_arg ~doc:"ASG grammar file." 0 "GRAMMAR"
          $ context_opt $ depth $ ranked)

let learn_t =
  let save =
    Arg.(value & opt (some string) None & info [ "save"; "o" ] ~docv:"FILE"
           ~doc:"Write the learned grammar (ASG syntax) to FILE.")
  in
  Cmd.v
    (Cmd.info "learn"
       ~doc:"Learn ASG annotations from context-dependent examples.")
    Term.(const learn_cmd $ file_arg ~doc:"ASG grammar file." 0 "GRAMMAR"
          $ file_arg ~doc:"Examples file (+/- sentence | context)." 1 "EXAMPLES"
          $ file_arg ~doc:"Hypothesis-space file (prods | rule)." 2 "SPACE"
          $ save)

let repl_t =
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive ASP session (rules, :solve, :optimal).")
    Term.(const repl_cmd $ const ())

let explain_t =
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain why a sentence is (in)valid under a context.")
    Term.(const explain_cmd $ file_arg ~doc:"ASG grammar file." 0 "GRAMMAR"
          $ sentence_arg 1 $ context_opt)

let () =
  let info =
    Cmd.info "agenp" ~version:"1.0.0"
      ~doc:"Generative policies as answer set grammars: solve, check, \
            generate, learn, explain."
  in
  exit
    (Cmd.eval' (Cmd.group info
          [ solve_t; ground_t; check_t; generate_t; learn_t; explain_t; repl_t ]))
