examples/cav_scenario.ml: Asp Explain Fmt Ilp List Workloads
