examples/quickstart.mli:
