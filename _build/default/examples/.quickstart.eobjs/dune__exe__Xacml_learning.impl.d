examples/xacml_learning.ml: Fmt Ilp List Policy Workloads
