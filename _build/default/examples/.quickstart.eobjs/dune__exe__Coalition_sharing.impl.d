examples/coalition_sharing.ml: Agenp Asp Fmt Ilp List Workloads
