examples/resupply_mission.mli:
