examples/intent_policies.ml: Asg Asp Explain Fmt Intent List
