examples/resupply_mission.ml: Asg Fmt Ilp List Workloads
