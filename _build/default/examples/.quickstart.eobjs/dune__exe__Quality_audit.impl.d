examples/quality_audit.ml: Fmt Ilp List Policy String Workloads
