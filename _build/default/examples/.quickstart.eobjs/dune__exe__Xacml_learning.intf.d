examples/xacml_learning.mli:
