examples/quickstart.ml: Asg Asp Fmt Ilp List
