examples/quality_audit.mli:
