examples/convoy_composition.ml: Asg Explain Fmt Ilp List Workloads
