examples/convoy_composition.mli:
