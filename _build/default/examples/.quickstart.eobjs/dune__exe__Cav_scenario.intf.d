examples/cav_scenario.mli:
