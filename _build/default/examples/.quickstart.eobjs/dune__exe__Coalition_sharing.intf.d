examples/coalition_sharing.mli:
