examples/intent_policies.mli:
