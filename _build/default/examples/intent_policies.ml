(* Natural-language intents to generative policies (paper Section III-B).

   An operator writes policy intents in controlled English; the compiler
   produces the generative policy model (grammar + ASP annotations), which
   then answers requests, ranks options by the stated preferences, and
   explains itself.

   Run with: dune exec examples/intent_policies.exe *)

let intents =
  "the options are accept or reject. \
   never accept when weather is snow and task is overtake. \
   never accept when vehicle_loa is below needed_loa. \
   never accept when weather is fog and time is night. \
   penalize reject by 1."

let () =
  Fmt.pr "Operator intents:@.  %s@.@." intents;
  let gpm = Intent.compile intents in
  Fmt.pr "Compiled ASG annotations:@.";
  List.iter (Fmt.pr "  %s@.") (Intent.describe gpm);
  let situations =
    [
      ("clear turn, capable vehicle",
       "weather(clear). task(turn). vehicle_loa(4). needed_loa(2). time(day).");
      ("snow overtake",
       "weather(snow). task(overtake). vehicle_loa(5). needed_loa(4). time(day).");
      ("under-capable vehicle",
       "weather(clear). task(park). vehicle_loa(1). needed_loa(3). time(day).");
      ("night fog",
       "weather(fog). task(straight). vehicle_loa(5). needed_loa(1). time(night).");
    ]
  in
  List.iter
    (fun (label, ctx_text) ->
      let context = Asp.Parser.parse_program ctx_text in
      let ranked =
        Asg.Language.ranked_sentences_in_context ~max_depth:4 gpm ~context
      in
      Fmt.pr "@.%s:@.  valid: %a@." label
        Fmt.(list ~sep:(any ", ") (fun ppf (s, c) -> Fmt.pf ppf "%s[cost %d]" s c))
        ranked;
      (match Asg.Language.best_sentence gpm ~context with
      | Some (best, _) -> Fmt.pr "  decision: %s@." best
      | None -> Fmt.pr "  decision: none valid!@.");
      if not (Asg.Membership.accepts_in_context gpm ~context "accept") then
        match Explain.Why.why_not gpm ~context "accept" with
        | Explain.Why.Blocked (b :: _) ->
          Fmt.pr "  why not accept: %a@." Explain.Why.pp_blocker b
        | _ -> ())
    situations
