(* Quickstart: the core AGENP workflow in 60 lines.

   1. Write a generative policy model as an answer set grammar (ASG):
      a context-free grammar for the policy language, annotated with ASP.
   2. Check which policies are valid in a context (membership/generation).
   3. Learn the semantic constraints from context-dependent examples.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. An initial GPM: a device can "accept" or "reject" a task request.
        The grammar fixes the syntax; annotations attach ASP meaning. *)
  let gpm =
    Asg.Asg_parser.parse
      {| start -> decision
         decision -> "accept" { result(accept). }
                   | "reject" { result(reject). } |}
  in

  (* 2. Generation: with no learned constraints, every syntactically valid
        policy is admissible in every context. *)
  let ctx = Asp.Parser.parse_program "weather(snow)." in
  Fmt.pr "Before learning, valid in snow: %a@."
    Fmt.(list ~sep:(any ", ") string)
    (Asg.Language.sentences_in_context ~max_depth:4 gpm ~context:ctx);

  (* 3. Context-dependent examples: accepting is fine in sunshine but was
        observed to be invalid in snow. *)
  let examples =
    [
      Ilp.Example.positive_ctx "accept" "weather(sun).";
      Ilp.Example.positive_ctx "reject" "weather(snow).";
      Ilp.Example.negative_ctx "accept" "weather(snow).";
    ]
  in

  (* 4. A hypothesis space from a mode bias: constraints over the decision
        (child 1 of the start production) and the weather context. *)
  let space =
    Ilp.Hypothesis_space.generate
      (Ilp.Mode.make ~target_prods:[ 0 ] ~heads:[ Ilp.Mode.Constraint ]
         ~bodies:
           [
             Ilp.Mode.matom ~site:(Some 1) "result"
               [ Ilp.Mode.Constants [ "accept"; "reject" ] ];
             Ilp.Mode.matom "weather" [ Ilp.Mode.Constants [ "snow"; "sun" ] ];
           ]
         ~max_body:2 ())
  in
  Fmt.pr "Hypothesis space: %d candidate rules@."
    (Ilp.Hypothesis_space.size space);

  (* 5. Learn (the Figure-1 workflow): the minimal hypothesis consistent
        with the examples. *)
  match Ilp.Asg_learning.learn ~gpm ~space ~examples () with
  | None -> Fmt.pr "no consistent hypothesis@."
  | Some learned ->
    Fmt.pr "Learned rules:@.";
    List.iter (Fmt.pr "  %s@.") (Ilp.Asg_learning.hypothesis_text learned);
    let g = learned.Ilp.Asg_learning.gpm in
    Fmt.pr "After learning, valid in snow: %a@."
      Fmt.(list ~sep:(any ", ") string)
      (Asg.Language.sentences_in_context ~max_depth:4 g ~context:ctx);
    Fmt.pr "After learning, valid in sun:  %a@."
      Fmt.(list ~sep:(any ", ") string)
      (Asg.Language.sentences_in_context ~max_depth:4 g
         ~context:(Asp.Parser.parse_program "weather(sun)."))
