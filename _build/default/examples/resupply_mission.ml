(* Logistical resupply (paper Section IV-B, DAIS-ITA scenario).

   A coalition convoy planner learns route-selection policies from
   after-action reviews across a campaign of missions. Accuracy improves
   as missions accumulate ("the coalition learns from previous
   experience"), and a mid-campaign risk-appetite shift shows policy
   adaptation: the same learned threshold rule transfers because the
   appetite is part of the context.

   Run with: dune exec examples/resupply_mission.exe *)

let () =
  let space = Ilp.Hypothesis_space.generate (Workloads.Resupply.modes ()) in
  Fmt.pr "Hypothesis space: %d rules@." (Ilp.Hypothesis_space.size space);
  let campaign = Workloads.Resupply.campaign ~seed:21 ~n:30 ~shift_at:15 () in
  let test = Workloads.Resupply.campaign ~seed:99 ~n:40 ~shift_at:20 () in
  let seen = ref [] in
  List.iteri
    (fun i mission ->
      seen := !seen @ [ mission ];
      (* relearn after every 5 missions and report progress *)
      if (i + 1) mod 5 = 0 then begin
        let examples =
          List.concat_map Workloads.Resupply.examples_of_mission !seen
        in
        match
          Ilp.Asg_learning.learn ~gpm:(Workloads.Resupply.gpm ()) ~space
            ~examples ()
        with
        | None -> Fmt.pr "mission %2d: learning failed@." (i + 1)
        | Some learned ->
          let acc =
            Workloads.Resupply.gpm_accuracy learned.Ilp.Asg_learning.gpm test
          in
          Fmt.pr "mission %2d (%s appetite): %d examples, accuracy %.3f@."
            (i + 1) mission.Workloads.Resupply.risk_appetite
            (List.length examples) acc;
          if i + 1 = 30 then begin
            Fmt.pr "@.Final learned route policy:@.";
            List.iter (Fmt.pr "  %s@.")
              (Ilp.Asg_learning.hypothesis_text learned);
            (* plan a concrete mission *)
            let m =
              { Workloads.Resupply.threat_north = 2; threat_south = 4;
                threat_river = 0; weather = "storm"; time = "night";
                risk_appetite = "high" }
            in
            Fmt.pr "@.Mission: threats N=2 S=4 R=0, storm, night, high appetite@.";
            Fmt.pr "Valid routes: %a@."
              Fmt.(list ~sep:(any ", ") string)
              (Workloads.Resupply.options learned.Ilp.Asg_learning.gpm m);
            (* learn the value function from after-action preferences and
               rank the valid routes by it *)
            let weak_space =
              Ilp.Hypothesis_space.generate
                (Ilp.Mode.make ~target_prods:[ 0 ]
                   ~heads:
                     [ Ilp.Mode.WeakHead (Ilp.Mode.VarOperand "t");
                       Ilp.Mode.WeakHead (Ilp.Mode.IntOperand 2) ]
                   ~bodies:
                     [ Ilp.Mode.matom ~required:true ~site:(Some 1) "chosen"
                         [ Ilp.Mode.Variable "rt" ];
                       Ilp.Mode.matom ~required:true ~site:(Some 1) "chosen"
                         [ Ilp.Mode.Constants Workloads.Resupply.routes ];
                       Ilp.Mode.matom "threat"
                         [ Ilp.Mode.Variable "rt"; Ilp.Mode.Variable "t" ];
                       Ilp.Mode.matom "time"
                         [ Ilp.Mode.Constants Workloads.Resupply.times ] ]
                   ~max_body:2 ())
            in
            let orderings =
              List.concat_map
                (fun mission ->
                  let ctx = Workloads.Resupply.to_context mission in
                  let valid =
                    List.filter
                      (Workloads.Resupply.route_valid mission)
                      Workloads.Resupply.routes
                  in
                  List.concat_map
                    (fun r1 ->
                      List.filter_map
                        (fun r2 ->
                          if
                            r1 <> r2
                            && Workloads.Resupply.route_cost mission r1
                               < Workloads.Resupply.route_cost mission r2
                          then Some (Ilp.Preference.prefer ~context:ctx r1 r2)
                          else None)
                        valid)
                    valid)
                !seen
            in
            (match
               Ilp.Preference.learn ~gpm:(Workloads.Resupply.gpm ())
                 ~space:weak_space ~orderings ()
             with
            | Some pref ->
              Fmt.pr "@.Learned value function (%d orderings):@."
                (List.length orderings);
              List.iter
                (fun (c : Ilp.Hypothesis_space.candidate) ->
                  Fmt.pr "  %s@." (Asg.Annotation.rule_to_string c.rule))
                pref.Ilp.Preference.hypothesis;
              let full =
                Ilp.Task.apply_hypothesis learned.Ilp.Asg_learning.gpm
                  pref.Ilp.Preference.hypothesis
              in
              Fmt.pr "Routes ranked by learned cost: %a@."
                Fmt.(
                  list ~sep:(any ", ") (fun ppf (s, c) ->
                      Fmt.pf ppf "%s[%d]" s c))
                (Asg.Language.ranked_sentences_in_context ~max_depth:4 full
                   ~context:(Workloads.Resupply.to_context m))
            | None -> Fmt.pr "no value function learnable@.")
          end
      end)
    campaign
