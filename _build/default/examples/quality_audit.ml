(* Policy quality audit (paper Section V-A): assess a learned policy set
   for consistency, relevance, minimality and completeness; inspect
   conflicts with resolution strategies; organize member policies into a
   coalition policy set; and exchange them as XACML-style XML.

   Run with: dune exec examples/quality_audit.exe *)

let () =
  (* learn an access-control policy from a request/response log *)
  let log = Workloads.Xacml_logs.log ~seed:1 ~n:80 () in
  let examples = Policy.Xacml.examples_of_log log in
  let space = Ilp.Hypothesis_space.generate (Workloads.Xacml_logs.modes ()) in
  match
    Ilp.Asg_learning.learn ~gpm:(Workloads.Xacml_logs.gpm ()) ~space ~examples ()
  with
  | None -> Fmt.pr "learning failed@."
  | Some l ->
    let learned, _ =
      Policy.Xacml.policy_of_hypothesis ~pid:"alpha-learned"
        l.Ilp.Asg_learning.outcome.Ilp.Learner.hypothesis
    in
    let completed =
      { learned with
        Policy.Rule_policy.rules =
          learned.Policy.Rule_policy.rules
          @ [ Policy.Rule_policy.rule ~effect:Policy.Rule_policy.Permit "default" ] }
    in
    let request_space = Workloads.Xacml_logs.request_space () in

    (* 1. quality metrics *)
    Fmt.pr "=== Quality (Section V-A) ===@.";
    let q = Policy.Quality.assess completed request_space in
    Fmt.pr "%a@." Policy.Quality.pp q;

    (* 2. degrade and re-assess: a rogue permit rule sneaks in *)
    let rogue =
      Policy.Rule_policy.rule ~effect:Policy.Rule_policy.Permit "rogue"
        ~condition:
          (Policy.Expr.Equals
             (Policy.Attribute.action "id", Policy.Attribute.Str "delete"))
    in
    let degraded =
      { completed with
        Policy.Rule_policy.rules = rogue :: completed.Policy.Rule_policy.rules }
    in
    Fmt.pr "with a rogue permit-delete rule:@.%a@."
      Policy.Quality.pp
      (Policy.Quality.assess degraded request_space);

    (* 3. conflict inspection with resolution strategies *)
    Fmt.pr "@.=== Conflicts ===@.";
    let conflicts =
      Policy.Conflict.static_conflicts degraded.Policy.Rule_policy.rules
        request_space
    in
    List.iter
      (fun ((a : Policy.Rule_policy.rule), (b : Policy.Rule_policy.rule), w) ->
        Fmt.pr "%s vs %s on %a@." a.Policy.Rule_policy.rid
          b.Policy.Rule_policy.rid Policy.Request.pp w;
        Fmt.pr "  prefer-deny resolves to: %a@." Policy.Decision.pp
          (Policy.Conflict.evaluate_with Policy.Conflict.Prefer_deny
             [ a; b ] w))
      (List.filteri (fun i _ -> i < 3) conflicts);

    (* 4. a coalition policy set: two members under deny-overrides *)
    Fmt.pr "@.=== Coalition policy set ===@.";
    let bravo =
      Policy.Rule_policy.make "bravo-manual"
        [ Policy.Rule_policy.rule ~effect:Policy.Rule_policy.Deny "no-config"
            ~condition:
              (Policy.Expr.Equals
                 (Policy.Attribute.resource "type", Policy.Attribute.Str "config"));
          Policy.Rule_policy.rule ~effect:Policy.Rule_policy.Permit "default" ]
    in
    let tree =
      Policy.Policy_set.set ~alg:Policy.Rule_policy.Deny_overrides "coalition"
        [ Policy.Policy_set.policy completed; Policy.Policy_set.policy bravo ]
    in
    let r =
      Workloads.Xacml_logs.request ~role:"manager" ~resource:"config"
        ~action:"read"
    in
    Fmt.pr "manager reads config -> %a (decided by %s)@." Policy.Decision.pp
      (Policy.Policy_set.evaluate tree r)
      (match Policy.Policy_set.deciding_policy tree r with
      | Some p -> p.Policy.Rule_policy.pid
      | None -> "nobody");

    (* 5. wire format: ship alpha's policy to bravo *)
    Fmt.pr "@.=== XACML exchange ===@.";
    let xml = Policy.Xacml_xml.to_string completed in
    let received = Policy.Xacml_xml.of_string xml in
    Fmt.pr "serialized %d bytes; behavioural match after roundtrip: %b@."
      (String.length xml)
      (List.for_all
         (fun r ->
           Policy.Rule_policy.evaluate completed r
           = Policy.Rule_policy.evaluate received r)
         request_space);
    Fmt.pr "%s" (String.concat "\n"
      (List.filteri (fun i _ -> i < 6) (String.split_on_char '\n' xml)));
    Fmt.pr "@.  ...@."
