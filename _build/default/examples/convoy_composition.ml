(* Convoy composition (paper Section IV-B): "how the convoy should be
   made up (ratio of delivery vehicles ... to the number of escort
   vehicles)".

   Policies here are structured strings — convoy compositions — and the
   grammar's recursive annotations count units through the parse tree.
   The learner recovers ratio constraints relating counts to the threat
   level; generation proposes deployable convoys; repair says what to
   change about a rejected one.

   Run with: dune exec examples/convoy_composition.exe *)

let () =
  let space = Ilp.Hypothesis_space.generate (Workloads.Convoy.modes ()) in
  let train = Workloads.Convoy.sample ~seed:11 80 in
  let examples = Workloads.Convoy.examples_of train in
  Fmt.pr "Training on %d labelled convoys, %d candidate rules...@."
    (List.length train)
    (Ilp.Hypothesis_space.size space);
  match Ilp.Asg_learning.learn ~gpm:(Workloads.Convoy.gpm ()) ~space ~examples () with
  | None -> Fmt.pr "learning failed@."
  | Some l ->
    let g = l.Ilp.Asg_learning.gpm in
    Fmt.pr "Learned composition policy:@.";
    List.iter (Fmt.pr "  %s@.") (Ilp.Asg_learning.hypothesis_text l);
    Fmt.pr "Accuracy over all %d situations: %.3f@.@."
      (List.length (Workloads.Convoy.all_situations ()))
      (Workloads.Convoy.gpm_accuracy g (Workloads.Convoy.all_situations ()));

    (* generation: what convoys may roll out at each threat level? *)
    List.iter
      (fun threat ->
        let convoys = Workloads.Convoy.deployable ~max_depth:6 g ~threat in
        Fmt.pr "threat %d: %d deployable small convoys; e.g. %s@." threat
          (List.length convoys)
          (match convoys with c :: _ -> "\"" ^ c ^ "\"" | [] -> "(none)"))
      [ 0; 2; 3 ];

    (* repair: a convoy is rejected — what is the minimal fix? *)
    Fmt.pr "@.Proposed convoy \"truck truck escort\" at threat 2:@.";
    let ctx = Workloads.Convoy.context ~threat:2 in
    if Asg.Membership.accepts_in_context g ~context:ctx "truck truck escort"
    then Fmt.pr "  deployable as is@."
    else begin
      (match Explain.Why.why_not g ~context:ctx "truck truck escort" with
      | Explain.Why.Blocked (b :: _) ->
        Fmt.pr "  rejected: %a@." Explain.Why.pp_blocker b
      | _ -> ());
      match Explain.Repair.repair g ~context:ctx "truck truck escort" with
      | Some r ->
        Fmt.pr "  repair: %s@."
          (Explain.Repair.to_sentence "truck truck escort" r)
      | None -> Fmt.pr "  no small repair found@."
    end
