(* Connected-and-autonomous-vehicle scenario (paper Section IV-A).

   A CAV learns, from observed accept/reject decisions, a generative
   policy model that decides whether a driving-task request should be
   accepted — including level-of-autonomy thresholds — and then explains
   its decisions (why-not and counterfactual, Section V-B).

   Run with: dune exec examples/cav_scenario.exe *)

let () =
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  let train = Workloads.Cav.sample ~seed:42 80 in
  let examples = Workloads.Cav.examples_of train in
  Fmt.pr "Training on %d scenarios (%d examples), space of %d rules...@."
    (List.length train) (List.length examples)
    (Ilp.Hypothesis_space.size space);
  match Ilp.Asg_learning.learn ~gpm:(Workloads.Cav.gpm ()) ~space ~examples () with
  | None -> Fmt.pr "learning failed@."
  | Some learned ->
    Fmt.pr "Learned policy model:@.";
    List.iter (Fmt.pr "  %s@.") (Ilp.Asg_learning.hypothesis_text learned);
    let g = learned.Ilp.Asg_learning.gpm in

    (* held-out evaluation *)
    let test = Workloads.Cav.sample ~seed:7 300 in
    Fmt.pr "Held-out decision accuracy: %.3f@."
      (Workloads.Cav.gpm_accuracy g test);

    (* decide a concrete request *)
    let s =
      { Workloads.Cav.task = "overtake"; vehicle_loa = 5; region_loa = 2;
        weather = "snow"; time = "day" }
    in
    let ctx = Workloads.Cav.to_context s in
    Fmt.pr "@.Request: overtake, vehicle LOA 5, snow, day@.";
    Fmt.pr "Decision: %s@."
      (if Workloads.Cav.decide g s then "ACCEPT" else "REJECT");

    (* why-not explanation *)
    (match Explain.Why.why_not g ~context:ctx "accept" with
    | Explain.Why.Blocked blockers ->
      Fmt.pr "Why not accept?@.";
      List.iter
        (fun b -> Fmt.pr "  %a@." Explain.Why.pp_blocker b)
        blockers
    | other -> Fmt.pr "  %s@." (Explain.Why.why_not_to_string other));

    (* counterfactual: what would have to differ? *)
    let facts = Asp.Program.facts ctx in
    let alternatives (a : Asp.Atom.t) =
      match a.Asp.Atom.pred with
      | "weather" ->
        List.filter_map
          (fun w ->
            let alt = Asp.Atom.make "weather" [ Asp.Term.const w ] in
            if Asp.Atom.equal alt a then None else Some alt)
          Workloads.Cav.weathers
      | "task" ->
        List.filter_map
          (fun t ->
            let alt = Asp.Atom.make "task" [ Asp.Term.const t ] in
            if Asp.Atom.equal alt a then None else Some alt)
          Workloads.Cav.tasks
      | _ -> []
    in
    (match Explain.Counterfactual.find ~alternatives g ~facts "accept" with
    | Some changes ->
      Fmt.pr "Counterfactual: %s@."
        (Explain.Counterfactual.to_sentence "accept" changes)
    | None -> Fmt.pr "No counterfactual within the allowed changes.@.")
