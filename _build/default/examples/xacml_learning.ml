(* XACML policy learning from request/response logs (paper Section IV-C,
   Figure 3).

   A synthetic conformance-style log of access requests and decisions is
   fed to the ASG learner; the learned constraints are rendered back as
   XACML-style rules (Figure 3a). The run then demonstrates the three
   Figure-3b failure modes and their mitigations: role-hierarchy
   background knowledge against overfitting, and example filtering
   against noisy logs.

   Run with: dune exec examples/xacml_learning.exe *)

let learn_and_show ~label gpm modes examples =
  let space = Ilp.Hypothesis_space.generate modes in
  match Ilp.Asg_learning.learn ~gpm ~space ~examples () with
  | None ->
    Fmt.pr "%s: no consistent hypothesis@." label;
    None
  | Some learned ->
    let policy, leftovers =
      Policy.Xacml.policy_of_hypothesis ~pid:label
        learned.Ilp.Asg_learning.outcome.Ilp.Learner.hypothesis
    in
    Fmt.pr "%s:@.%a@." label Policy.Rule_policy.pp policy;
    List.iter (Fmt.pr "  (as ASP) %s@.") leftovers;
    let acc =
      Workloads.Xacml_logs.gpm_accuracy learned.Ilp.Asg_learning.gpm
        (Workloads.Xacml_logs.request_space ())
    in
    Fmt.pr "  full-space accuracy: %.3f@.@." acc;
    Some learned

let () =
  (* Figure 3a: correctly learned policies from a clean log *)
  let log = Workloads.Xacml_logs.log ~seed:1 ~n:80 () in
  ignore
    (learn_and_show ~label:"fig3a-clean" (Workloads.Xacml_logs.gpm ())
       (Workloads.Xacml_logs.modes ())
       (Policy.Xacml.examples_of_log log));

  (* Figure 3b-1: overfitting on a sparse log, and the background-knowledge fix *)
  let sparse = Workloads.Xacml_logs.log ~seed:3 ~n:12 () in
  Fmt.pr "--- sparse log (%d entries) ---@." (List.length sparse);
  ignore
    (learn_and_show ~label:"fig3b-overfit-flat" (Workloads.Xacml_logs.gpm ())
       (Workloads.Xacml_logs.modes ())
       (Policy.Xacml.examples_of_log sparse));
  ignore
    (learn_and_show ~label:"fig3b-fixed-by-hierarchy"
       (Workloads.Xacml_logs.gpm_with_hierarchy ())
       (Workloads.Xacml_logs.hierarchy_modes ())
       (Policy.Xacml.examples_of_log sparse));

  (* Figure 3b-3: a noisy log with irrelevant responses; filtering fixes it *)
  let noisy =
    Workloads.Xacml_logs.noisy_log ~seed:5 ~n:60 ~flip:0.05 ~irrelevant:0.15 ()
  in
  Fmt.pr "--- noisy log (5%% flips, 15%% irrelevant responses) ---@.";
  ignore
    (learn_and_show ~label:"fig3b-noise-unfiltered"
       (Workloads.Xacml_logs.gpm ())
       (Workloads.Xacml_logs.modes ())
       (Policy.Xacml.examples_of_log ~keep_irrelevant:true ~weight:3 noisy));
  ignore
    (learn_and_show ~label:"fig3b-noise-filtered" (Workloads.Xacml_logs.gpm ())
       (Workloads.Xacml_logs.modes ())
       (Policy.Xacml.examples_of_log ~keep_irrelevant:false ~weight:3 noisy))
