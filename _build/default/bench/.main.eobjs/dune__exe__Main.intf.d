bench/main.mli:
