bench/timings.ml: Agenp Analyze Asg Asp Bechamel Benchmark Fmt Grammar Hashtbl Ilp Lazy List Measure Printf Staged String Test Time Toolkit Workloads
