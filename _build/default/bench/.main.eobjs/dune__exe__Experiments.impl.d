bench/experiments.ml: Agenp Asg Asp Explain Fmt Fun Grammar Ilp List Ml Policy Printf String Sys Workloads
