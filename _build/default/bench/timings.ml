(* Bechamel micro-benchmarks: one Test.make per core operation, grouped.
   Printed as ns/run estimates (OLS against the run counter). *)

open Bechamel

let cav_gpm = lazy (Workloads.Cav.gpm ())

let learned_gpm =
  lazy
    (let space =
       Ilp.Hypothesis_space.generate (Workloads.Cav.modes ~max_body:2 ())
     in
     let examples =
       Workloads.Cav.examples_of (Workloads.Cav.sample ~seed:42 20)
     in
     match Ilp.Asg_learning.learn ~gpm:(Lazy.force cav_gpm) ~space ~examples () with
     | Some l -> l.Ilp.Asg_learning.gpm
     | None -> Lazy.force cav_gpm)

let scenario = lazy (List.hd (Workloads.Cav.sample ~seed:3 1))

let coloring_program n =
  let edges =
    String.concat " "
      (List.init n (fun i -> Printf.sprintf "edge(%d, %d)." i ((i + 1) mod n)))
  in
  Asp.Parser.parse_program
    (Printf.sprintf
       "node(0..%d). %s col(r). col(g). col(b). 1 { color(N, C) : col(C) } 1 \
        :- node(N). :- edge(X, Y), color(X, C), color(Y, C)."
       (n - 1) edges)

let tests () =
  let solve_prog = coloring_program 6 in
  let ground_prog = coloring_program 8 in
  [
    Test.make ~name:"asp-parse"
      (Staged.stage (fun () ->
           Asp.Parser.parse_program "q(X) :- p(X, Y), not r(Y), X > 3. p(1..5, a)."));
    Test.make ~name:"asp-ground"
      (Staged.stage (fun () -> Asp.Grounder.ground ground_prog));
    Test.make ~name:"asp-solve-6cycle"
      (Staged.stage (fun () -> Asp.Solver.solve solve_prog));
    Test.make ~name:"earley-parse"
      (Staged.stage (fun () ->
           Grammar.Earley.parses_sentence
             (Asg.Gpm.cfg (Lazy.force cav_gpm))
             "accept"));
    Test.make ~name:"asg-membership"
      (Staged.stage (fun () ->
           Asg.Membership.accepts_in_context (Lazy.force learned_gpm)
             ~context:(Workloads.Cav.to_context (Lazy.force scenario))
             "accept"));
    Test.make ~name:"pdp-decide"
      (Staged.stage (fun () ->
           Agenp.Pdp.decide (Lazy.force learned_gpm)
             ~context:(Workloads.Cav.to_context (Lazy.force scenario))
             ~options:[ "accept"; "reject" ]));
  ]

let run () =
  Fmt.pr "@.==================================================@.";
  Fmt.pr "TIMINGS  Bechamel micro-benchmarks (ns/run, OLS)@.";
  Fmt.pr "==================================================@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Fmt.pr "%-20s %12.0f ns/run@." name est
          | _ -> Fmt.pr "%-20s (no estimate)@." name)
        analysis)
    (tests ())
