(* Benchmark/experiment driver: regenerates every table and figure in
   EXPERIMENTS.md. Usage:
     dune exec bench/main.exe                 -- full run
     dune exec bench/main.exe -- --quick      -- reduced sizes
     dune exec bench/main.exe -- --timings    -- add Bechamel micro-benches
     dune exec bench/main.exe -- fig3a cav    -- selected experiments only *)

let registry =
  [
    ("fig1", Experiments.fig1_workflow);
    ("fig2", Experiments.fig2_loop);
    ("fig3a", Experiments.fig3a);
    ("fig3b-overfit", Experiments.fig3b_overfit);
    ("fig3b-unsafe", Experiments.fig3b_unsafe);
    ("fig3b-noise", Experiments.fig3b_noise);
    ("cav", Experiments.cav_curve);
    ("resupply", Experiments.resupply);
    ("convoy", Experiments.convoy);
    ("sharing", Experiments.sharing);
    ("byzantine", Experiments.byzantine);
    ("quality", Experiments.quality);
    ("explain", Experiments.explain);
    ("datashare", Experiments.datashare);
    ("utility", Experiments.utility);
    ("preference", Experiments.preference);
    ("federated", Experiments.federated);
    ("perf", Experiments.perf);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let timings = List.mem "--timings" args in
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let to_run =
    match selected with
    | [] -> registry
    | names ->
      List.filter (fun (name, _) -> List.mem name names) registry
  in
  if to_run = [] then begin
    Fmt.pr "unknown experiment; available: %s@."
      (String.concat ", " (List.map fst registry));
    exit 1
  end;
  let t0 = Sys.time () in
  List.iter (fun (_, f) -> f ~quick ()) to_run;
  if timings then Timings.run ();
  Fmt.pr "@.total wall time: %.1fs@." (Sys.time () -. t0)
