(* The agenp command-line tool: solve ASP programs, check/generate/learn
   answer set grammars, explain decisions, and drive the AGENP closed
   loop — all from files.

   File formats:
   - ASP programs / contexts: plain ASP text (see lib/asp/parser.ml).
   - Grammars: the ASG syntax of lib/asg/asg_parser.ml.
   - Examples: one per line, [+ sentence | context-program] for positive
     and [- sentence | context-program] for negative (context optional).
   - Hypothesis spaces: one per line, [prod_ids | annotated-rule], e.g.
     [0 | :- result(accept)@1, weather(snow).].
   Blank lines and lines starting with '#' are ignored in both.

   Every subcommand accepts [--trace FILE] (write a Chrome trace_event
   JSON of the run, loadable in chrome://tracing or Perfetto),
   [--flamegraph FILE] (speedscope JSON or folded stacks, by extension),
   [--log FILE] (JSONL structured log at debug level), [--gc-stats]
   (per-span allocation accounting) and [--report] (print the aggregate
   span/counter report on exit). *)

(** A malformed input file; the message carries [path:line:]. *)
exception Cli_input_error of string

let input_error path lineno fmt =
  Printf.ksprintf
    (fun msg ->
      raise (Cli_input_error (Printf.sprintf "%s:%d: %s" path lineno msg)))
    fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(** Lines of [path] with 1-based numbers, blanks and '#' comments
    dropped, leading/trailing whitespace trimmed. *)
let numbered_lines path =
  read_file path
  |> String.split_on_char '\n'
  |> List.mapi (fun i line -> (i + 1, String.trim line))
  |> List.filter (fun (_, line) -> line <> "" && line.[0] <> '#')

(** Parse an embedded ASP fragment, rewrapping engine errors with the
    file position. *)
let parse_asp_at path lineno what text =
  match Asp.Parser.parse_program text with
  | p -> p
  | exception Asp.Parser.Parse_error msg ->
    input_error path lineno "bad %s: %s" what msg
  | exception Asp.Lexer.Lex_error (msg, _) ->
    input_error path lineno "bad %s: %s" what msg

let load_context = function
  | None -> Asp.Program.empty
  | Some path -> Asp.Parser.parse_program (read_file path)

let parse_examples_file path : Ilp.Example.t list =
  numbered_lines path
  |> List.map (fun (lineno, line) ->
         let label, rest =
           match line.[0] with
           | '+' -> (`Pos, String.sub line 1 (String.length line - 1))
           | '-' -> (`Neg, String.sub line 1 (String.length line - 1))
           | _ ->
             input_error path lineno
               "example line must start with '+' or '-': %s" line
         in
         let sentence, ctx =
           match String.index_opt rest '|' with
           | None -> (String.trim rest, "")
           | Some i ->
             ( String.trim (String.sub rest 0 i),
               String.sub rest (i + 1) (String.length rest - i - 1) )
         in
         if sentence = "" then input_error path lineno "empty sentence";
         let context = parse_asp_at path lineno "context program" ctx in
         match label with
         | `Pos -> Ilp.Example.positive ~context sentence
         | `Neg -> Ilp.Example.negative ~context sentence)

let parse_space_file path : Ilp.Hypothesis_space.t =
  numbered_lines path
  |> List.concat_map (fun (lineno, line) ->
         match String.index_opt line '|' with
         | None ->
           input_error path lineno "space line must be 'prods | rule': %s" line
         | Some i ->
           let prods =
             String.sub line 0 i |> String.split_on_char ' '
             |> List.filter_map (fun s ->
                    let s = String.trim s in
                    if s = "" then None
                    else
                      match int_of_string_opt s with
                      | Some n -> Some n
                      | None ->
                        input_error path lineno
                          "production ids must be integers: %s" s)
           in
           let rule =
             String.trim (String.sub line (i + 1) (String.length line - i - 1))
           in
           (* one of_rules call per line so parse errors carry the line *)
           (match Ilp.Hypothesis_space.of_rules [ (rule, prods) ] with
           | space -> space
           | exception Asp.Parser.Parse_error msg ->
             input_error path lineno "bad rule: %s" msg
           | exception Asp.Lexer.Lex_error (msg, _) ->
             input_error path lineno "bad rule: %s" msg))

(* ---- observability ----------------------------------------------------- *)

type obs_opts = {
  trace : string option;
  flamegraph : string option;
  log_file : string option;
  gc_stats : bool;
  report : bool;
  domains : int;
}

(** Run a command body under the requested observability: start trace
    collection (with fine spans) when [--trace] or [--flamegraph] is
    given, open the JSONL structured log for [--log], enable per-span GC
    accounting for [--gc-stats], and emit the trace/flamegraph files and
    aggregate report when the body is done — also on the error path, so
    a failing run still leaves its artifacts behind. Also the single
    place the process-wide parallelism degree ([--domains]) is
    installed, before any library builds the global pool. *)
let with_obs (o : obs_opts) f =
  if o.domains <> Par.Config.domains () then Par.Config.set_domains o.domains;
  if o.trace <> None || o.flamegraph <> None then begin
    Obs.set_detailed true;
    Obs.Trace.start ()
  end;
  if o.gc_stats then Obs.set_gc_stats true;
  (match o.log_file with
  | Some path ->
    Obs.Log.open_file path;
    (* a log file is a request for everything; stderr keeps its
       warn-and-up threshold *)
    Obs.Log.set_level Obs.Log.Debug
  | None -> ());
  let finish () =
    (if o.trace <> None || o.flamegraph <> None then begin
       let spans = Obs.Trace.stop () in
       (match o.trace with
       | Some path ->
         Obs.Trace.write_chrome path spans;
         Fmt.epr "%% trace: %d span(s) -> %s%s@." (List.length spans) path
           (if Obs.Trace.dropped () > 0 then
              Printf.sprintf " (%d dropped)" (Obs.Trace.dropped ())
            else "")
       | None -> ());
       match o.flamegraph with
       | Some path ->
         (* .json gets the speedscope document; anything else the
            flamegraph.pl folded-stacks text *)
         if Filename.check_suffix path ".json" then
           Obs.Trace.write_speedscope path spans
         else Obs.Trace.write_folded path spans;
         Fmt.epr "%% flamegraph: %d span(s) -> %s@." (List.length spans) path
       | None -> ()
     end);
    Obs.Log.close_file ();
    if o.report then Fmt.pr "%s@?" (Obs.report_to_string (Obs.report ()))
  in
  Fun.protect ~finally:finish f

(** Turn input errors into a clean one-line diagnostic (exit code 2)
    instead of an uncaught-exception backtrace. *)
let guard f =
  try f () with
  | Cli_input_error msg | Sys_error msg ->
    Fmt.epr "agenp: %s@." msg;
    2
  | Asp.Parser.Parse_error msg ->
    Fmt.epr "agenp: parse error: %s@." msg;
    2
  | Asp.Lexer.Lex_error (msg, pos) ->
    Fmt.epr "agenp: lex error at offset %d: %s@." pos msg;
    2

(** [guard] covers the command body; the outer match covers observability
    setup and teardown (an unwritable [--trace]/[--flamegraph]/[--log]
    path raises [Sys_error] outside the body — from [finish] it arrives
    wrapped in [Fun.Finally_raised]). *)
let run obs f =
  match with_obs obs (fun () -> guard f) with
  | code -> code
  | exception (Sys_error msg | Fun.Finally_raised (Sys_error msg)) ->
    Fmt.epr "agenp: %s@." msg;
    2

(* ---- commands --------------------------------------------------------- *)

let solve_cmd obs file models optimal =
  run obs @@ fun () ->
  let program = Asp.Parser.parse_program (read_file file) in
  if optimal then begin
    match Asp.Solver.solve_optimal program with
    | None ->
      Fmt.pr "UNSATISFIABLE@.";
      1
    | Some (ms, cost) ->
      List.iter
        (fun m -> Fmt.pr "Optimal (cost %d): %s@." cost (Asp.Solver.model_to_string m))
        ms;
      0
  end
  else begin
    match Asp.Solver.solve ?limit:models program with
    | [] ->
      Fmt.pr "UNSATISFIABLE@.";
      1
    | ms ->
      List.iteri
        (fun i m -> Fmt.pr "Answer %d: %s@." (i + 1) (Asp.Solver.model_to_string m))
        ms;
      0
  end

let ground_cmd obs file =
  run obs @@ fun () ->
  let program = Asp.Parser.parse_program (read_file file) in
  let gp = Asp.Grounder.ground program in
  List.iter (Fmt.pr "%a@." Asp.Grounder.pp_ground_rule) gp.Asp.Grounder.grules;
  Fmt.pr "%% %d atoms, %d ground rules@."
    (Asp.Grounder.atom_count gp) (Asp.Grounder.size gp);
  0

let check_cmd obs grammar sentence context =
  run obs @@ fun () ->
  let gpm = Asg.Asg_parser.parse (read_file grammar) in
  let context = load_context context in
  if Asg.Membership.accepts_in_context gpm ~context sentence then begin
    Fmt.pr "VALID@.";
    0
  end
  else begin
    Fmt.pr "INVALID@.";
    1
  end

let generate_cmd obs grammar context depth ranked =
  run obs @@ fun () ->
  let gpm = Asg.Asg_parser.parse (read_file grammar) in
  let context = load_context context in
  if ranked then
    List.iter
      (fun (s, c) -> Fmt.pr "%s [cost %d]@." s c)
      (Asg.Language.ranked_sentences_in_context ~max_depth:depth gpm ~context)
  else
    List.iter (Fmt.pr "%s@.")
      (Asg.Language.sentences_in_context ~max_depth:depth gpm ~context);
  0

let learn_cmd obs grammar examples space save max_witnesses =
  run obs @@ fun () ->
  let gpm = Asg.Asg_parser.parse (read_file grammar) in
  let examples = parse_examples_file examples in
  let space = parse_space_file space in
  match Ilp.Asg_learning.learn ~max_witnesses ~gpm ~space ~examples () with
  | None ->
    Fmt.pr "UNSATISFIABLE (no inductive solution)@.";
    1
  | Some learned ->
    (* the truncation warning itself now comes from the learner via
       Obs.Log; the CLI only names the flag that raises the cap *)
    let stats = learned.Ilp.Asg_learning.outcome.Ilp.Learner.stats in
    if stats.Ilp.Learner.truncated > 0 then
      Fmt.epr "%% hint: raise --max-witnesses (currently %d) to recheck@."
        max_witnesses;
    List.iter (Fmt.pr "%s@.") (Ilp.Asg_learning.hypothesis_text learned);
    Fmt.pr "%% cost %d, penalty %d@."
      learned.Ilp.Asg_learning.outcome.Ilp.Learner.cost
      learned.Ilp.Asg_learning.outcome.Ilp.Learner.penalty;
    (match save with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Asg.Asg_parser.render learned.Ilp.Asg_learning.gpm);
      close_out oc;
      Fmt.pr "%% learned grammar written to %s@." path);
    0

let explain_cmd obs grammar sentence context =
  run obs @@ fun () ->
  let gpm = Asg.Asg_parser.parse (read_file grammar) in
  let context = load_context context in
  if Asg.Membership.accepts_in_context gpm ~context sentence then begin
    (match Explain.Why.why gpm ~context sentence with
    | Some m -> Fmt.pr "VALID, witness: %s@." (Asp.Solver.model_to_string m)
    | None -> Fmt.pr "VALID@.");
    0
  end
  else begin
    Fmt.pr "INVALID: %s@."
      (Explain.Why.why_not_to_string (Explain.Why.why_not gpm ~context sentence));
    1
  end

(** Parse a decision-request file: one request per line,
    [opt1 opt2 ... | context-program] with the context optional. *)
let parse_requests_file path : (string list * Asp.Program.t) list =
  numbered_lines path
  |> List.map (fun (lineno, line) ->
         let opts_str, ctx =
           match String.index_opt line '|' with
           | None -> (line, "")
           | Some i ->
             ( String.sub line 0 i,
               String.sub line (i + 1) (String.length line - i - 1) )
         in
         let options =
           String.split_on_char ' ' opts_str
           |> List.filter_map (fun s ->
                  let s = String.trim s in
                  if s = "" then None else Some s)
         in
         if options = [] then input_error path lineno "no options on line";
         let context = parse_asp_at path lineno "context program" ctx in
         (options, context))

(** Serve decision requests from a file through the caching engine.
    Sequential serving prints each decision with its cache provenance
    (deterministic); [--batch] fans the request list across the domain
    pool and prints decisions only, in input order. [--repeat] replays
    the request list, demonstrating the memo warming up.

    The ops-plane flags: [--metrics-port] exposes /metrics over TCP
    while the process runs (plus [--metrics-linger] to stay scrapeable
    after the requests are served), [--metrics-once] prints the
    OpenMetrics snapshot to stdout, [--stats-json] writes the schema'd
    engine statistics, [--audit] exports the decision audit trail as
    JSONL, and [--slo-target]/[--slo-objective]/[--slo-window]
    configure the latency SLO the engine tracks. *)
(* export the global health-event ring as JSONL (mirrors --audit) *)
let write_health_out = function
  | Some path ->
    let events = Obs.Health.events () in
    Obs.Health.write_jsonl path events;
    Fmt.epr "%% health: %d event(s) -> %s@." (List.length events) path
  | None -> ()

let serve_cmd obs grammar requests context repeat stats batch tenants
    queue_depth stats_json audit_out health_out metrics_port metrics_linger
    metrics_once slo_target slo_objective slo_window =
  run obs @@ fun () ->
  if tenants < 1 then
    raise (Cli_input_error "--tenants must be at least 1");
  if queue_depth < 1 then
    raise (Cli_input_error "--queue-depth must be at least 1");
  let gpm = Asg.Asg_parser.parse (read_file grammar) in
  let base = load_context context in
  let reqs =
    parse_requests_file requests
    |> List.map (fun (options, ctx) ->
           Serve.Request.make ~context:(Asp.Program.append base ctx) ~options ())
  in
  let config =
    {
      Serve.Config.default with
      Serve.Config.slo =
        {
          Serve.Config.target = slo_target;
          objective = slo_objective;
          window = slo_window;
        };
    }
  in
  if tenants > 1 then begin
    (* multi-tenant path: one shard per simulated tenant, the request
       stream round-robined across them, served through the cluster's
       flow-controlled ingestion front *)
    let unsupported flag =
      raise
        (Cli_input_error
           (flag ^ " is not supported with --tenants (per-shard state has \
                    no single-engine view)"))
    in
    if batch then unsupported "--batch";
    if stats_json <> None then unsupported "--stats-json";
    if audit_out <> None then unsupported "--audit";
    if metrics_port <> None then unsupported "--metrics-port";
    let names = List.init tenants (fun i -> "t" ^ string_of_int i) in
    let cluster =
      Serve.Cluster.create ~config ~queue_depth
        ~tenants:(List.map (fun n -> (n, gpm)) names)
        ()
    in
    let name_arr = Array.of_list names in
    let tenanted =
      List.mapi
        (fun i (req : Serve.Request.t) ->
          { req with Serve.Request.tenant = name_arr.(i mod tenants) })
        reqs
    in
    for _pass = 1 to repeat do
      List.iter
        (function
          | Serve.Cluster.Served (r : Serve.Response.t) ->
            Fmt.pr "%s [%s %s]@." r.Serve.Response.decision.Serve.Decision.chosen
              r.Serve.Response.shard
              (Serve.provenance_to_string r.Serve.Response.provenance)
          | Serve.Cluster.Rejected reason ->
            Fmt.pr "rejected [%s]@."
              (Serve.Cluster.reject_reason_to_string reason))
        (Serve.Cluster.run cluster tenanted)
    done;
    if stats then begin
      List.iter
        (fun (tenant, s) ->
          Fmt.pr "shard %s:@.%a@." tenant Serve.pp_stats s)
        (Serve.Cluster.stats cluster);
      Fmt.pr "cluster: %d submitted, %d coalesced, %d rejected@."
        (Serve.Cluster.submitted cluster)
        (Serve.Cluster.coalesced cluster)
        (Serve.Cluster.rejected cluster)
    end;
    write_health_out health_out;
    if metrics_once then print_string (Serve.Cluster.openmetrics cluster);
    0
  end
  else begin
  let engine = Serve.create ~config gpm in
  let server =
    Option.map
      (fun port ->
        let s =
          Serve.Metrics.start ~port
            ~render:(fun () -> Serve.openmetrics engine)
            ()
        in
        Fmt.epr "%% metrics: /metrics on port %d@." (Serve.Metrics.port s);
        s)
      metrics_port
  in
  Fun.protect ~finally:(fun () -> Option.iter Serve.Metrics.stop server)
  @@ fun () ->
  for _pass = 1 to repeat do
    if batch then
      List.iter
        (fun (r : Serve.Response.t) ->
          Fmt.pr "%s@." r.Serve.Response.decision.Serve.Decision.chosen)
        (Serve.Batch.run engine reqs)
    else
      List.iter
        (fun req ->
          let r = Serve.decide engine req in
          Fmt.pr "%s [%s]@." r.Serve.Response.decision.Serve.Decision.chosen
            (Serve.provenance_to_string r.Serve.Response.provenance))
        reqs
  done;
  if stats then Fmt.pr "%a@." Serve.pp_stats (Serve.stats engine);
  (match stats_json with
  | Some path ->
    let oc = open_out path in
    output_string oc (Serve.stats_to_json engine);
    output_char oc '\n';
    close_out oc;
    Fmt.epr "%% stats: %s@." path
  | None -> ());
  (match (audit_out, Serve.audit engine) with
  | Some path, Some ring ->
    let records = Serve.Audit.to_list ring in
    Serve.Audit.write_jsonl path records;
    Fmt.epr "%% audit: %d record(s) -> %s@." (List.length records) path
  | Some path, None -> Serve.Audit.write_jsonl path []
  | None, _ -> ());
  write_health_out health_out;
  if metrics_once then print_string (Serve.openmetrics engine);
  (match metrics_linger with
  | Some sec when server <> None ->
    Fmt.epr "%% metrics: lingering %gs@." sec;
    Unix.sleepf sec
  | _ -> ());
  0
  end

(** Query/tail a decision audit trail exported with [serve --audit]. *)
let audit_cmd obs file last trace_filter fallbacks json =
  run obs @@ fun () ->
  let records =
    try Serve.Audit.read_jsonl file
    with Obs.Json.Parse_error msg ->
      raise (Cli_input_error (Printf.sprintf "%s: bad audit JSONL: %s" file msg))
  in
  let records =
    match trace_filter with
    | Some id ->
      List.filter
        (fun (r : Serve.Audit.record) -> String.equal r.trace_id id)
        records
    | None -> records
  in
  let records =
    if fallbacks then
      List.filter (fun (r : Serve.Audit.record) -> r.fallback_used) records
    else records
  in
  let records =
    match last with
    | Some n ->
      let len = List.length records in
      List.filteri (fun i _ -> i >= len - n) records
    | None -> records
  in
  if json then
    List.iter
      (fun r -> Fmt.pr "%s@." (Serve.Audit.record_to_json r))
      records
  else begin
    List.iter
      (fun (r : Serve.Audit.record) ->
        Fmt.pr "%6d %s %s [%s]%s%s %.6fs@." r.seq r.trace_id r.chosen
          r.provenance
          (if r.fallback_used then " fallback" else "")
          (match r.compliant with
          | Some true -> " compliant"
          | Some false -> " violation"
          | None -> "")
          r.latency)
      records;
    Fmt.pr "%% %d record(s)@." (List.length records)
  end;
  0

(** Query a policy-health event trail exported with [--health] (from
    [serve] or [pipeline]): detector rate-shift alarms and PAdaP
    relearn lifecycle events. *)
let health_cmd obs file last since_version json =
  run obs @@ fun () ->
  let events =
    try Obs.Health.read_jsonl file
    with Obs.Json.Parse_error msg ->
      raise
        (Cli_input_error (Printf.sprintf "%s: bad health JSONL: %s" file msg))
  in
  let events =
    match since_version with
    | Some v ->
      List.filter
        (fun (e : Obs.Health.event) -> e.Obs.Health.ev_gpm_version >= v)
        events
    | None -> events
  in
  let events =
    match last with
    | Some n ->
      let len = List.length events in
      List.filteri (fun i _ -> i >= len - n) events
    | None -> events
  in
  if json then
    Fmt.pr "{\"schema\": \"health/1\", \"events\": [%s]}@."
      (String.concat ", " (List.map Obs.Health.event_to_json events))
  else begin
    List.iter
      (fun (e : Obs.Health.event) ->
        Fmt.pr "%6d %-18s %-10s v%-3d n=%-4d %.3f->%.3f (%+.3f)%s@."
          e.Obs.Health.ev_seq e.Obs.Health.ev_signal e.Obs.Health.ev_kind
          e.Obs.Health.ev_gpm_version e.Obs.Health.ev_observations
          e.Obs.Health.ev_baseline e.Obs.Health.ev_current
          e.Obs.Health.ev_deviation
          (if e.Obs.Health.ev_detail = "" then ""
           else " " ^ e.Obs.Health.ev_detail))
      events;
    Fmt.pr "%% %d event(s)@." (List.length events)
  end;
  0

(** Replay requests through an engine and print the rolling-window /
    SLO view of the run — the live-ops counterpart of [serve --stats]. *)
let monitor_cmd obs grammar requests context repeat slo_target slo_objective
    slo_window =
  run obs @@ fun () ->
  let gpm = Asg.Asg_parser.parse (read_file grammar) in
  let base = load_context context in
  let reqs =
    parse_requests_file requests
    |> List.map (fun (options, ctx) ->
           Serve.Request.make ~context:(Asp.Program.append base ctx) ~options ())
  in
  let config =
    {
      Serve.Config.default with
      Serve.Config.slo =
        {
          Serve.Config.target = Some slo_target;
          objective = slo_objective;
          window = slo_window;
        };
    }
  in
  let engine = Serve.create ~config gpm in
  for _pass = 1 to repeat do
    List.iter (fun req -> ignore (Serve.decide engine req)) reqs
  done;
  let s = Serve.stats engine in
  Fmt.pr "served %d request(s): memo rate %.2f, ground rate %.2f@."
    (s.Serve.decisions.Serve.hits + s.Serve.decisions.Serve.misses)
    (Serve.hit_rate s.Serve.decisions)
    (Serve.hit_rate s.Serve.grounds);
  (match Obs.Window.find "serve.decide" with
  | Some w ->
    Fmt.pr
      "window serve.decide (last %.0fs): count %d, rate %.2f/s, p50 %.6fs, \
       p90 %.6fs, p99 %.6fs@."
      (Obs.Window.window_seconds w)
      (Obs.Window.count w) (Obs.Window.rate w)
      (Obs.Window.quantile w 0.50)
      (Obs.Window.quantile w 0.90)
      (Obs.Window.quantile w 0.99)
  | None -> ());
  (match Serve.slo engine with
  | Some slo ->
    let st = Obs.Slo.status slo in
    Fmt.pr "slo serve.decide: target %.6fs, objective %.4f over %.0fs@."
      st.Obs.Slo.slo_target st.Obs.Slo.slo_objective st.Obs.Slo.slo_window;
    Fmt.pr
      "    seen %d, breach(es) %d, compliance %.4f, burn %.2f, budget %.2f@."
      st.Obs.Slo.window_total st.Obs.Slo.window_breaches st.Obs.Slo.compliance
      st.Obs.Slo.burn_rate st.Obs.Slo.budget_remaining
  | None -> ());
  0

(** Drive the XACML request log through the full AGENP closed loop (PIP →
    PDP → PEP → PAdaP), exercising every layer of the stack — the
    workload behind the stock trace/report demonstration. [--serve]
    routes the PDP through the caching engine; the output is identical
    by construction (caches never change decisions). *)
let pipeline_cmd obs requests seed serve health_out =
  run obs @@ fun () ->
  let spec : Agenp.Prep.pbms_spec =
    {
      Agenp.Prep.grammar_text =
        Asg.Asg_parser.render (Workloads.Xacml_logs.gpm ());
      global_constraints = [];
    }
  in
  let space = Ilp.Hypothesis_space.generate (Workloads.Xacml_logs.modes ()) in
  (* ground truth for the request currently being enforced; set from the
     log before each PDP call, read by the monitoring oracle *)
  let truth = ref Policy.Decision.Permit in
  let env : Agenp.Ams.environment =
    {
      Agenp.Ams.options = [ "permit"; "deny" ];
      oracle =
        (fun _context opt ->
          match opt with
          | "deny" -> true (* denying is always safe *)
          | "permit" -> Policy.Decision.equal !truth Policy.Decision.Permit
          | _ -> false);
      audit_rate = 0.0;
    }
  in
  let ams = Agenp.Ams.create ~name:"xacml-ams" ~seed ~spec ~space env in
  if serve then
    Agenp.Ams.attach_engine ams
      (Serve.Engine (Serve.create (Agenp.Ams.gpm ams)));
  let log = Workloads.Xacml_logs.log ~seed ~n:requests () in
  List.iter
    (fun (r, d) ->
      truth := d;
      ignore (Agenp.Ams.handle_request ams (Policy.Request.to_context r)))
    log;
  Fmt.pr "%d request(s), compliance %.3f, %d adaptation(s), %d rule(s) learned@."
    (List.length log)
    (Agenp.Ams.compliance_rate ams)
    (Agenp.Ams.relearn_count ams)
    (List.length (Agenp.Ams.hypothesis ams));
  write_health_out health_out;
  0

let repl_cmd () =
  Fmt.pr "agenp ASP repl — enter rules ending with '.', then:@.";
  Fmt.pr "  :solve [n]   answer sets (up to n)@.";
  Fmt.pr "  :optimal     optimal answer sets@.";
  Fmt.pr "  :ground      show the ground program@.";
  Fmt.pr "  :list        show the program@.";
  Fmt.pr "  :clear       start over@.";
  Fmt.pr "  :quit        leave@.";
  let program = ref Asp.Program.empty in
  let rec loop () =
    Fmt.pr "> @?";
    match In_channel.input_line stdin with
    | None -> 0
    | Some line -> (
      let line = String.trim line in
      match String.split_on_char ' ' line with
      | [ "" ] -> loop ()
      | ":quit" :: _ -> 0
      | ":clear" :: _ ->
        program := Asp.Program.empty;
        loop ()
      | ":list" :: _ ->
        Fmt.pr "%a@." Asp.Program.pp !program;
        loop ()
      | ":ground" :: _ ->
        (try
           let gp = Asp.Grounder.ground !program in
           List.iter
             (Fmt.pr "%a@." Asp.Grounder.pp_ground_rule)
             gp.Asp.Grounder.grules
         with
        | Asp.Grounder.Unsafe_rule r ->
          Fmt.pr "unsafe rule: %a@." Asp.Rule.pp r);
        loop ()
      | ":solve" :: rest ->
        let limit =
          match rest with n :: _ -> int_of_string_opt n | [] -> None
        in
        (try
           match Asp.Solver.solve ?limit !program with
           | [] -> Fmt.pr "UNSATISFIABLE@."
           | ms ->
             List.iteri
               (fun i m ->
                 Fmt.pr "Answer %d: %s@." (i + 1) (Asp.Solver.model_to_string m))
               ms
         with
        | Asp.Grounder.Unsafe_rule r ->
          Fmt.pr "unsafe rule: %a@." Asp.Rule.pp r);
        loop ()
      | ":optimal" :: _ ->
        (try
           match Asp.Solver.solve_optimal !program with
           | None -> Fmt.pr "UNSATISFIABLE@."
           | Some (ms, cost) ->
             List.iter
               (fun m ->
                 Fmt.pr "Optimal (cost %d): %s@." cost
                   (Asp.Solver.model_to_string m))
               ms
         with
        | Asp.Grounder.Unsafe_rule r ->
          Fmt.pr "unsafe rule: %a@." Asp.Rule.pp r);
        loop ()
      | _ -> (
        match Asp.Parser.parse_program line with
        | p ->
          program := Asp.Program.append !program p;
          loop ()
        | exception Asp.Parser.Parse_error msg ->
          Fmt.pr "parse error: %s@." msg;
          loop ()
        | exception Asp.Lexer.Lex_error (msg, pos) ->
          Fmt.pr "lex error at %d: %s@." pos msg;
          loop ()))
  in
  loop ()

(* ---- cmdliner wiring --------------------------------------------------- *)

open Cmdliner

let file_arg ~doc n name = Arg.(required & pos n (some file) None & info [] ~docv:name ~doc)

let obs_t =
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON of the run to FILE \
                 (view in chrome://tracing or ui.perfetto.dev). Enables \
                 fine-grained spans.")
  in
  let flamegraph =
    Arg.(value & opt (some string) None & info [ "flamegraph" ] ~docv:"FILE"
           ~doc:"Write a flamegraph of the run to FILE: a speedscope JSON \
                 document when FILE ends in .json (view at speedscope.app), \
                 Brendan-Gregg folded stacks otherwise (input to \
                 flamegraph.pl). Enables fine-grained spans, like --trace.")
  in
  let log_file =
    Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE"
           ~doc:"Write the structured log to FILE as JSON Lines (one object \
                 per record: ts, level, domain, span, depth, msg, attrs) and \
                 lower the log threshold to debug. Warnings still go to \
                 stderr either way.")
  in
  let gc_stats =
    Arg.(value & flag & info [ "gc-stats" ]
           ~doc:"Record per-span GC deltas (minor words, promoted words, \
                 major collections) as span attributes and aggregate them \
                 per span name; --report then grows allocation columns.")
  in
  let report =
    Arg.(value & flag & info [ "report" ]
           ~doc:"Print the aggregate span/counter report after the run.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Number of domains (OCaml threads of parallelism) for the \
                 learner's fan-outs. 1 (the default) runs sequentially; \
                 results are identical for every value.")
  in
  Term.(const (fun trace flamegraph log_file gc_stats report domains ->
            { trace; flamegraph; log_file; gc_stats; report; domains })
        $ trace $ flamegraph $ log_file $ gc_stats $ report $ domains)

let context_opt =
  Arg.(value & opt (some file) None & info [ "context"; "c" ] ~docv:"FILE"
         ~doc:"ASP program providing the context facts/rules.")

(* SLO flags shared by [serve] (optional target) and [monitor] (target
   with a default — monitoring always tracks an SLO). *)
let slo_target_opt =
  Arg.(value & opt (some float) None & info [ "slo-target" ] ~docv:"SEC"
         ~doc:"Track a latency SLO with this target in seconds; the \
               engine records breaches, compliance and error-budget burn \
               over the --slo-window.")

let slo_objective_t =
  Arg.(value & opt float 0.99 & info [ "slo-objective" ] ~docv:"FRAC"
         ~doc:"Fraction of requests that must meet the SLO target \
               (e.g. 0.99).")

let slo_window_t =
  Arg.(value & opt float 60.0 & info [ "slo-window" ] ~docv:"SEC"
         ~doc:"Rolling window, in seconds, over which SLO compliance and \
               burn rate are computed.")

let solve_t =
  let models =
    Arg.(value & opt (some int) None & info [ "models"; "n" ] ~docv:"N"
           ~doc:"Stop after N answer sets.")
  in
  let optimal =
    Arg.(value & flag & info [ "optimal" ] ~doc:"Report only optimal models \
                                                 (weak-constraint cost).")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Compute the answer sets of an ASP program.")
    Term.(const solve_cmd $ obs_t $ file_arg ~doc:"ASP program file." 0 "FILE"
          $ models $ optimal)

let ground_t =
  Cmd.v
    (Cmd.info "ground" ~doc:"Print the ground instantiation of an ASP program.")
    Term.(const ground_cmd $ obs_t $ file_arg ~doc:"ASP program file." 0 "FILE")

let sentence_arg n =
  Arg.(required & pos n (some string) None & info [] ~docv:"SENTENCE"
         ~doc:"Policy sentence (tokens separated by spaces).")

let check_t =
  Cmd.v
    (Cmd.info "check" ~doc:"Check membership of a sentence in an ASG's language.")
    Term.(const check_cmd $ obs_t $ file_arg ~doc:"ASG grammar file." 0 "GRAMMAR"
          $ sentence_arg 1 $ context_opt)

let generate_t =
  let depth =
    Arg.(value & opt int 8 & info [ "depth"; "d" ] ~docv:"N"
           ~doc:"Maximum derivation depth.")
  in
  let ranked =
    Arg.(value & flag & info [ "ranked" ] ~doc:"Rank sentences by \
                                                weak-constraint cost.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate the valid policies of an ASG (optionally in a context).")
    Term.(const generate_cmd $ obs_t $ file_arg ~doc:"ASG grammar file." 0 "GRAMMAR"
          $ context_opt $ depth $ ranked)

let learn_t =
  let save =
    Arg.(value & opt (some string) None & info [ "save"; "o" ] ~docv:"FILE"
           ~doc:"Write the learned grammar (ASG syntax) to FILE.")
  in
  let max_witnesses =
    Arg.(value & opt int 64 & info [ "max-witnesses" ] ~docv:"N"
           ~doc:"Cap on (parse tree, answer set) witnesses enumerated per \
                 example. A warning is printed when the cap truncates the \
                 enumeration.")
  in
  Cmd.v
    (Cmd.info "learn"
       ~doc:"Learn ASG annotations from context-dependent examples.")
    Term.(const learn_cmd $ obs_t $ file_arg ~doc:"ASG grammar file." 0 "GRAMMAR"
          $ file_arg ~doc:"Examples file (+/- sentence | context)." 1 "EXAMPLES"
          $ file_arg ~doc:"Hypothesis-space file (prods | rule)." 2 "SPACE"
          $ save $ max_witnesses)

let health_out_opt =
  Arg.(value & opt (some string) None & info [ "health" ] ~docv:"FILE"
         ~doc:"Export the policy-health event ring (detector rate-shift \
               alarms, PAdaP relearn lifecycle) to FILE as JSON Lines. \
               Query it with 'agenp health'.")

let pipeline_t =
  let requests =
    Arg.(value & opt int 40 & info [ "requests"; "n" ] ~docv:"N"
           ~doc:"Number of access requests to replay.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")
  in
  let serve =
    Arg.(value & flag & info [ "serve" ]
           ~doc:"Route PDP decisions through the caching serving engine. \
                 Output is identical either way; only latency changes.")
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:"Replay the XACML request log through the full AGENP closed \
             loop (PIP, PDP, PEP, PAdaP); the go-to workload for --trace.")
    Term.(const pipeline_cmd $ obs_t $ requests $ seed $ serve
          $ health_out_opt)

let serve_t =
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Serve the request list N times; later passes hit the \
                 decision memo.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print cache hit/miss/eviction statistics after serving.")
  in
  let batch =
    Arg.(value & flag & info [ "batch" ]
           ~doc:"Serve each pass as one batch across the domain pool \
                 (--domains); decisions are printed in input order and \
                 are identical to sequential serving.")
  in
  let tenants =
    Arg.(value & opt int 1 & info [ "tenants" ] ~docv:"N"
           ~doc:"Serve through a sharded multi-tenant cluster of N \
                 simulated tenants (t0..tN-1), round-robining the request \
                 stream across them. Each tenant owns an isolated shard \
                 (its own memo, ground cache, and model stamp); decisions \
                 print with shard provenance. N=1 keeps the single-engine \
                 path.")
  in
  let queue_depth =
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N"
           ~doc:"Bound of the cluster ingestion queue (with --tenants > 1): \
                 the flow-controlled stream drains whenever N requests are \
                 queued, coalescing identical (tenant, context, options) \
                 submissions in each window.")
  in
  let stats_json =
    Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write the engine statistics to FILE as one JSON object \
                 (schema serve-stats/4: per-tier hits/misses/evictions/\
                 collisions/entries/capacity/hit_rate, delta-grounding \
                 counts, audit-ring occupancy, and the policy-health \
                 signals).")
  in
  let audit_out =
    Arg.(value & opt (some string) None & info [ "audit" ] ~docv:"FILE"
           ~doc:"Export the decision audit trail to FILE as JSON Lines \
                 (one record per served decision: seq, ts, trace, \
                 context_fp, gpm_version, options, chosen, fallback_used, \
                 compliant, provenance, latency_s). Query it with \
                 'agenp audit'.")
  in
  let metrics_port =
    Arg.(value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT"
           ~doc:"Serve the OpenMetrics exposition at \
                 http://127.0.0.1:PORT/metrics for the lifetime of the \
                 run (PORT 0 picks an ephemeral port; the bound port is \
                 printed to stderr).")
  in
  let metrics_linger =
    Arg.(value & opt (some float) None & info [ "metrics-linger" ] ~docv:"SEC"
           ~doc:"After serving, keep the process (and the --metrics-port \
                 endpoint) alive for SEC seconds so an external scraper \
                 can collect the final exposition.")
  in
  let metrics_once =
    Arg.(value & flag & info [ "metrics-once" ]
           ~doc:"Print the OpenMetrics exposition to stdout once after \
                 serving — the one-shot, no-TCP counterpart of \
                 --metrics-port.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve decision requests from a file through the two-tier \
             caching engine. Requests are lines of the form \
             'opt1 opt2 ... | context-program' (context optional).")
    Term.(const serve_cmd $ obs_t $ file_arg ~doc:"ASG grammar file." 0 "GRAMMAR"
          $ file_arg ~doc:"Requests file (options | context per line)." 1 "REQUESTS"
          $ context_opt $ repeat $ stats $ batch $ tenants $ queue_depth
          $ stats_json $ audit_out
          $ health_out_opt $ metrics_port $ metrics_linger $ metrics_once
          $ slo_target_opt $ slo_objective_t $ slo_window_t)

let audit_t =
  let last =
    Arg.(value & opt (some int) None & info [ "last"; "n" ] ~docv:"N"
           ~doc:"Show only the newest N matching records (a tail).")
  in
  let trace_filter =
    Arg.(value & opt (some string) None & info [ "trace-id" ] ~docv:"ID"
           ~doc:"Show only records with this trace ID.")
  in
  let fallbacks =
    Arg.(value & flag & info [ "fallbacks" ]
           ~doc:"Show only decisions where the model admitted nothing and \
                 the fail-safe fallback was used.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Re-emit the matching records as JSON Lines instead of the \
                 human-readable table.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Query a decision audit trail exported by 'agenp serve \
             --audit' (filter by trace ID or fallback use, tail the \
             newest N).")
    Term.(const audit_cmd $ obs_t
          $ file_arg ~doc:"Audit JSONL file (from serve --audit)." 0 "FILE"
          $ last $ trace_filter $ fallbacks $ json)

let health_t =
  let last =
    Arg.(value & opt (some int) None & info [ "last"; "n" ] ~docv:"N"
           ~doc:"Show only the newest N matching events (a tail).")
  in
  let since_version =
    Arg.(value & opt (some int) None & info [ "since-version" ] ~docv:"N"
           ~doc:"Show only events attributed to GPM version N or later.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the matching events as one JSON object (schema \
                 health/1) instead of the human-readable table.")
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:"Query a policy-health event trail exported by 'agenp serve \
             --health' or 'agenp pipeline --health': change-point alarms \
             on violation/fallback/non-compliance rates and PAdaP \
             relearn lifecycle events.")
    Term.(const health_cmd $ obs_t
          $ file_arg ~doc:"Health JSONL file (from --health)." 0 "FILE"
          $ last $ since_version $ json)

let monitor_t =
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Replay the request list N times before reporting.")
  in
  let slo_target =
    Arg.(value & opt float 0.1 & info [ "slo-target" ] ~docv:"SEC"
           ~doc:"Latency SLO target in seconds.")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Replay decision requests and print the rolling-window / SLO \
             ops view: windowed latency quantiles, request rate, error \
             budget and burn rate.")
    Term.(const monitor_cmd $ obs_t
          $ file_arg ~doc:"ASG grammar file." 0 "GRAMMAR"
          $ file_arg ~doc:"Requests file (options | context per line)." 1 "REQUESTS"
          $ context_opt $ repeat $ slo_target $ slo_objective_t
          $ slo_window_t)

let repl_t =
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive ASP session (rules, :solve, :optimal).")
    Term.(const repl_cmd $ const ())

let explain_t =
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain why a sentence is (in)valid under a context.")
    Term.(const explain_cmd $ obs_t $ file_arg ~doc:"ASG grammar file." 0 "GRAMMAR"
          $ sentence_arg 1 $ context_opt)

let () =
  let info =
    Cmd.info "agenp" ~version:"1.0.0"
      ~doc:"Generative policies as answer set grammars: solve, check, \
            generate, learn, explain."
  in
  exit
    (Cmd.eval' (Cmd.group info
          [ solve_t; ground_t; check_t; generate_t; learn_t; explain_t;
            serve_t; audit_t; health_t; monitor_t; pipeline_t; repl_t ]))
