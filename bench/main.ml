(* Benchmark/experiment driver: regenerates every table and figure in
   EXPERIMENTS.md. Usage:
     dune exec bench/main.exe                 -- full run
     dune exec bench/main.exe -- --quick      -- reduced sizes
     dune exec bench/main.exe -- --timings    -- add Bechamel micro-benches
     dune exec bench/main.exe -- --trace F    -- write a Chrome trace to F
     dune exec bench/main.exe -- --flamegraph F -- speedscope (.json) / folded
     dune exec bench/main.exe -- --log F      -- JSONL structured log (debug)
     dune exec bench/main.exe -- --domains N  -- parallelism degree (Par.Config)
     dune exec bench/main.exe -- fig3a cav    -- selected experiments only
     dune exec bench/main.exe -- gate ...     -- perf regression gate (Gate) *)

let registry =
  [
    ("fig1", Experiments.fig1_workflow);
    ("fig2", Experiments.fig2_loop);
    ("fig3a", Experiments.fig3a);
    ("fig3b-overfit", Experiments.fig3b_overfit);
    ("fig3b-unsafe", Experiments.fig3b_unsafe);
    ("fig3b-noise", Experiments.fig3b_noise);
    ("cav", Experiments.cav_curve);
    ("resupply", Experiments.resupply);
    ("convoy", Experiments.convoy);
    ("sharing", Experiments.sharing);
    ("byzantine", Experiments.byzantine);
    ("quality", Experiments.quality);
    ("explain", Experiments.explain);
    ("datashare", Experiments.datashare);
    ("utility", Experiments.utility);
    ("preference", Experiments.preference);
    ("federated", Experiments.federated);
    ("perf", Experiments.perf);
    ("par", Experiments.par);
    ("serve", Experiments.serve);
    ("serve2", Experiments.serve2);
    ("drift", Experiments.drift);
  ]

(* Extract "FLAG FILE" from the raw argument list, returning the file
   (if any) and the arguments with both tokens removed. *)
let rec extract_opt flag = function
  | [] -> (None, [])
  | f :: file :: rest when f = flag ->
    let _, rest = extract_opt flag rest in
    (Some file, rest)
  | a :: rest ->
    let v, rest = extract_opt flag rest in
    (v, a :: rest)

(* Same for "--domains N": the process-wide parallelism degree every
   experiment inherits through Par.Config (the "par" experiment builds
   its own pools on top and is unaffected). *)
let rec extract_domains = function
  | [] -> (None, [])
  | "--domains" :: n :: rest ->
    let _, rest = extract_domains rest in
    (int_of_string_opt n, rest)
  | a :: rest ->
    let d, rest = extract_domains rest in
    (d, a :: rest)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* "gate" is a subcommand with its own argument grammar, not an
     experiment name — dispatch before any flag extraction *)
  (match args with
  | "gate" :: gate_args -> exit (Gate.run gate_args)
  | _ -> ());
  let trace_file, args = extract_opt "--trace" args in
  let flamegraph_file, args = extract_opt "--flamegraph" args in
  let log_file, args = extract_opt "--log" args in
  let domains, args = extract_domains args in
  Option.iter Par.Config.set_domains domains;
  let quick = List.mem "--quick" args in
  let timings = List.mem "--timings" args in
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let to_run =
    match selected with
    | [] -> registry
    | names ->
      List.filter (fun (name, _) -> List.mem name names) registry
  in
  if to_run = [] then begin
    Fmt.pr "unknown experiment; available: %s@."
      (String.concat ", " (List.map fst registry));
    exit 1
  end;
  (* Coarse spans only: a full experiment run produces millions of fine
     spans, so the detail gate stays shut to bound trace memory. *)
  if trace_file <> None || flamegraph_file <> None then Obs.Trace.start ();
  (match log_file with
  | Some path ->
    Obs.Log.open_file path;
    Obs.Log.set_level Obs.Log.Debug
  | None -> ());
  let t0 = Sys.time () in
  List.iter
    (fun (name, f) -> Obs.span ("bench." ^ name) (fun () -> f ~quick ()))
    to_run;
  if timings then Timings.run ();
  (if trace_file <> None || flamegraph_file <> None then begin
     let spans = Obs.Trace.stop () in
     (match trace_file with
     | Some path ->
       Obs.Trace.write_chrome path spans;
       Fmt.pr "@.trace: %d span(s) -> %s%s@." (List.length spans) path
         (if Obs.Trace.dropped () > 0 then
            Printf.sprintf " (%d dropped)" (Obs.Trace.dropped ())
          else "")
     | None -> ());
     match flamegraph_file with
     | Some path ->
       if Filename.check_suffix path ".json" then
         Obs.Trace.write_speedscope ~name:"agenp-bench" path spans
       else Obs.Trace.write_folded path spans;
       Fmt.pr "@.flamegraph: %d span(s) -> %s@." (List.length spans) path
     | None -> ()
   end);
  Obs.Log.close_file ();
  Fmt.pr "@.total wall time: %.1fs@." (Sys.time () -. t0)
