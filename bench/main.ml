(* Benchmark/experiment driver: regenerates every table and figure in
   EXPERIMENTS.md. Usage:
     dune exec bench/main.exe                 -- full run
     dune exec bench/main.exe -- --quick      -- reduced sizes
     dune exec bench/main.exe -- --timings    -- add Bechamel micro-benches
     dune exec bench/main.exe -- --trace F    -- write a Chrome trace to F
     dune exec bench/main.exe -- --domains N  -- parallelism degree (Par.Config)
     dune exec bench/main.exe -- fig3a cav    -- selected experiments only *)

let registry =
  [
    ("fig1", Experiments.fig1_workflow);
    ("fig2", Experiments.fig2_loop);
    ("fig3a", Experiments.fig3a);
    ("fig3b-overfit", Experiments.fig3b_overfit);
    ("fig3b-unsafe", Experiments.fig3b_unsafe);
    ("fig3b-noise", Experiments.fig3b_noise);
    ("cav", Experiments.cav_curve);
    ("resupply", Experiments.resupply);
    ("convoy", Experiments.convoy);
    ("sharing", Experiments.sharing);
    ("byzantine", Experiments.byzantine);
    ("quality", Experiments.quality);
    ("explain", Experiments.explain);
    ("datashare", Experiments.datashare);
    ("utility", Experiments.utility);
    ("preference", Experiments.preference);
    ("federated", Experiments.federated);
    ("perf", Experiments.perf);
    ("par", Experiments.par);
  ]

(* Extract "--trace FILE" from the raw argument list, returning the file
   (if any) and the arguments with both tokens removed. *)
let rec extract_trace = function
  | [] -> (None, [])
  | "--trace" :: file :: rest ->
    let _, rest = extract_trace rest in
    (Some file, rest)
  | a :: rest ->
    let tr, rest = extract_trace rest in
    (tr, a :: rest)

(* Same for "--domains N": the process-wide parallelism degree every
   experiment inherits through Par.Config (the "par" experiment builds
   its own pools on top and is unaffected). *)
let rec extract_domains = function
  | [] -> (None, [])
  | "--domains" :: n :: rest ->
    let _, rest = extract_domains rest in
    (int_of_string_opt n, rest)
  | a :: rest ->
    let d, rest = extract_domains rest in
    (d, a :: rest)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let trace_file, args = extract_trace args in
  let domains, args = extract_domains args in
  Option.iter Par.Config.set_domains domains;
  let quick = List.mem "--quick" args in
  let timings = List.mem "--timings" args in
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let to_run =
    match selected with
    | [] -> registry
    | names ->
      List.filter (fun (name, _) -> List.mem name names) registry
  in
  if to_run = [] then begin
    Fmt.pr "unknown experiment; available: %s@."
      (String.concat ", " (List.map fst registry));
    exit 1
  end;
  (* Coarse spans only: a full experiment run produces millions of fine
     spans, so the detail gate stays shut to bound trace memory. *)
  if trace_file <> None then Obs.Trace.start ();
  let t0 = Sys.time () in
  List.iter
    (fun (name, f) -> Obs.span ("bench." ^ name) (fun () -> f ~quick ()))
    to_run;
  if timings then Timings.run ();
  (match trace_file with
  | Some path ->
    let spans = Obs.Trace.stop () in
    Obs.Trace.write_chrome path spans;
    Fmt.pr "@.trace: %d span(s) -> %s%s@." (List.length spans) path
      (if Obs.Trace.dropped () > 0 then
         Printf.sprintf " (%d dropped)" (Obs.Trace.dropped ())
       else "")
  | None -> ());
  Fmt.pr "@.total wall time: %.1fs@." (Sys.time () -. t0)
