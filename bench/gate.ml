(* The bench regression gate: re-run the Bechamel micro-benches and
   compare against the committed BENCH_asp.json snapshot, plus re-check
   the BENCH_par.json outcome-identity invariant. Exit codes:

     0  every bench within tolerance and par outcomes identical
     1  at least one regression (or identity violation)
     2  missing/malformed baseline file or bad arguments

   The committed [current_ns_per_run] numbers are the baseline here:
   they are what the container measured when the snapshot was taken, so
   "current > committed * (1 + tolerance)" means the code got slower
   since. ([baseline_ns_per_run] in the same file is the *pre-rewrite*
   seed the speedup table is computed against — not what we gate on.) *)

let usage =
  "usage: bench gate [--tolerance F] [--quota SEC] [--runs N] \
   [--baseline-asp FILE] [--baseline-par FILE] [--baseline-serve FILE] \
   [--baseline-serve2 FILE] [--baseline-drift FILE] [--skip-par] \
   [--skip-serve] [--skip-serve2] [--skip-drift] [--rebaseline]"

type opts = {
  tolerance : float;  (** allowed fractional slowdown, default 0.15 *)
  quota : float;  (** Bechamel seconds per bench per run, default 0.5 *)
  runs : int;  (** measurement repetitions, per-bench min kept *)
  baseline_asp : string;
  baseline_par : string;
  baseline_serve : string;
  baseline_serve2 : string;
  baseline_drift : string;
  skip_par : bool;
  skip_serve : bool;
  skip_serve2 : bool;
  skip_drift : bool;
  rebaseline : bool;  (** re-capture BENCH_asp.json instead of checking *)
}

let default_opts =
  {
    tolerance = 0.15;
    quota = 0.5;
    runs = 5;
    baseline_asp = "BENCH_asp.json";
    baseline_par = "BENCH_par.json";
    baseline_serve = "BENCH_serve.json";
    baseline_serve2 = "BENCH_serve2.json";
    baseline_drift = "BENCH_drift.json";
    skip_par = false;
    skip_serve = false;
    skip_serve2 = false;
    skip_drift = false;
    rebaseline = false;
  }

exception Bad_args of string

let parse_args args =
  let rec go o = function
    | [] -> o
    | "--tolerance" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f when f >= 0.0 -> go { o with tolerance = f } rest
      | _ -> raise (Bad_args ("bad --tolerance: " ^ v)))
    | "--quota" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f when f > 0.0 -> go { o with quota = f } rest
      | _ -> raise (Bad_args ("bad --quota: " ^ v)))
    | "--runs" :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> go { o with runs = n } rest
      | _ -> raise (Bad_args ("bad --runs: " ^ v)))
    | "--baseline-asp" :: v :: rest -> go { o with baseline_asp = v } rest
    | "--baseline-par" :: v :: rest -> go { o with baseline_par = v } rest
    | "--baseline-serve" :: v :: rest -> go { o with baseline_serve = v } rest
    | "--baseline-serve2" :: v :: rest ->
      go { o with baseline_serve2 = v } rest
    | "--baseline-drift" :: v :: rest -> go { o with baseline_drift = v } rest
    | "--skip-par" :: rest -> go { o with skip_par = true } rest
    | "--skip-serve" :: rest -> go { o with skip_serve = true } rest
    | "--skip-serve2" :: rest -> go { o with skip_serve2 = true } rest
    | "--skip-drift" :: rest -> go { o with skip_drift = true } rest
    | "--rebaseline" :: rest -> go { o with rebaseline = true } rest
    | a :: _ -> raise (Bad_args ("unknown argument: " ^ a))
  in
  go default_opts args

let read_json path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Obs.Json.parse s

(* load the committed snapshot's per-bench numbers, checking the schema
   tag so a stale or foreign file fails loudly instead of gating against
   garbage *)
let load_asp_baseline path : (string * float) list =
  let j = read_json path in
  (match Obs.Json.(to_str (member "schema" j)) with
  | "bench-asp/1" -> ()
  | other -> failwith (Printf.sprintf "unexpected schema %S" other));
  match Obs.Json.member "current_ns_per_run" j with
  | Obs.Json.Obj kvs -> List.map (fun (k, v) -> (k, Obs.Json.to_num v)) kvs
  | _ -> failwith "current_ns_per_run is not an object"

let load_par_identical path : bool =
  let j = read_json path in
  (match Obs.Json.(to_str (member "schema" j)) with
  | "bench-par/1" -> ()
  | other -> failwith (Printf.sprintf "unexpected schema %S" other));
  Obs.Json.(to_bool (member "identical_outcome" j))

(* the committed serve snapshot: the cached-equals-uncached invariant and
   the warm decision-cache hit rate (which must be strictly positive —
   a snapshot whose caches never hit measured nothing). Both snapshot
   generations load: bench-serve/2 adds the incremental-grounding delta
   section, whose ns_per_ground the gate re-measures and compares under
   the tolerance. The ground-tier rate and delta section are optional
   only in bench-serve/1 files predating them. *)
let load_serve_baseline path : bool * float * float option * float option =
  let j = read_json path in
  (match Obs.Json.(to_str (member "schema" j)) with
  | "bench-serve/1" | "bench-serve/2" -> ()
  | other -> failwith (Printf.sprintf "unexpected schema %S" other));
  ( Obs.Json.(to_bool (member "identical_outcome" j)),
    Obs.Json.(to_num (member "hit_rate" (member "decision_cache" j))),
    Obs.Json.(
      Option.map (fun g -> to_num (member "hit_rate" g))
        (member_opt "ground_cache" j)),
    Obs.Json.(
      Option.map
        (fun d -> to_num (member "ns_per_ground" d))
        (member_opt "delta" j)) )

(* the committed multi-tenant serve snapshot: the cluster must have
   matched the sequential single-shard path bit-for-bit, routed every
   response to its tenant's shard, actually coalesced duplicate work,
   rejected the backpressure overfill, and never invalidated across
   tenants. Per-shard tier rates ride along for the zero-hit check. *)
let load_serve2_baseline path :
    bool * bool * int * int * int * (string * float * float) list =
  let j = read_json path in
  (match Obs.Json.(to_str (member "schema" j)) with
  | "bench-serve2/1" -> ()
  | other -> failwith (Printf.sprintf "unexpected schema %S" other));
  let shards =
    match Obs.Json.member "shards" j with
    | Obs.Json.Obj kvs ->
      List.map
        (fun (tenant, v) ->
          ( tenant,
            Obs.Json.(to_num (member "decision_hit_rate" v)),
            Obs.Json.(to_num (member "ground_hit_rate" v)) ))
        kvs
    | _ -> failwith "shards is not an object"
  in
  ( Obs.Json.(to_bool (member "identical_outcome" j)),
    Obs.Json.(to_bool (member "shard_provenance" j)),
    Obs.Json.(int_of_float (to_num (member "coalesced" j))),
    Obs.Json.(int_of_float (to_num (member "rejected_on_overfill" j))),
    Obs.Json.(int_of_float (to_num (member "cross_tenant_invalidations" j))),
    shards )

(* the committed drift snapshot: the detector must have caught the
   injected mutation, raised nothing on the stationary control, and the
   serve path must have stayed outcome-identical *)
let load_drift_baseline path : bool * int * int * bool =
  let j = read_json path in
  (match Obs.Json.(to_str (member "schema" j)) with
  | "bench-drift/1" -> ()
  | other -> failwith (Printf.sprintf "unexpected schema %S" other));
  ( Obs.Json.(to_bool (member "detected" j)),
    Obs.Json.(int_of_float (to_num (member "false_alarms_on_stationary" j))),
    Obs.Json.(int_of_float (to_num (member "detection_latency_requests" j))),
    Obs.Json.(to_bool (member "identical_outcome" j)) )

let rebaseline o =
  Fmt.pr "bench gate: re-capturing BENCH_asp.json (quota %.2fs, min of %d \
          run(s))@."
    o.quota o.runs;
  let collected, _ = Timings.snapshot ~quota:o.quota ~runs:o.runs () in
  List.iter
    (fun (name, est) -> Fmt.pr "%-20s %12.0f ns/run@." name est)
    collected;
  Fmt.pr "bench gate: snapshot written to BENCH_asp.json@.";
  0

let run args =
  match
    let o = parse_args args in
    if o.rebaseline then `Rebaseline o
    else
      let baseline = load_asp_baseline o.baseline_asp in
      let par_baseline_ok =
        if o.skip_par then None else Some (load_par_identical o.baseline_par)
      in
      let serve_baseline =
        if o.skip_serve then None
        else Some (load_serve_baseline o.baseline_serve)
      in
      let serve2_baseline =
        if o.skip_serve2 then None
        else Some (load_serve2_baseline o.baseline_serve2)
      in
      let drift_baseline =
        if o.skip_drift then None
        else Some (load_drift_baseline o.baseline_drift)
      in
      `Check
        ( o,
          baseline,
          par_baseline_ok,
          serve_baseline,
          serve2_baseline,
          drift_baseline )
  with
  | exception Bad_args msg ->
    Fmt.epr "bench gate: %s@.%s@." msg usage;
    2
  | exception Sys_error msg ->
    Fmt.epr "bench gate: %s@." msg;
    2
  | exception Obs.Json.Parse_error msg ->
    Fmt.epr "bench gate: bad baseline: %s@." msg;
    2
  | exception Failure msg ->
    Fmt.epr "bench gate: bad baseline: %s@." msg;
    2
  | `Rebaseline o -> rebaseline o
  | `Check
      ( o,
        baseline,
        par_baseline_ok,
        serve_baseline,
        serve2_baseline,
        drift_baseline ) ->
    Fmt.pr
      "bench gate: %d bench(es), tolerance %.0f%%, quota %.2fs, min of %d \
       run(s)@."
      (List.length baseline) (o.tolerance *. 100.0) o.quota o.runs;
    let current = Timings.measure ~quota:o.quota ~runs:o.runs () in
    let regressions = ref 0 in
    let missing = ref 0 in
    List.iter
      (fun (name, base) ->
        match List.assoc_opt name current with
        | None ->
          incr missing;
          Fmt.pr "%-20s %12.0f ns baseline, no current measurement  MISSING@."
            name base
        | Some cur ->
          let ratio = if base > 0.0 then cur /. base else infinity in
          let regressed = cur > base *. (1.0 +. o.tolerance) in
          if regressed then incr regressions;
          Fmt.pr "%-20s %12.0f ns -> %10.0f ns (%.2fx)  %s@." name base cur
            ratio
            (if regressed then "REGRESSION" else "ok"))
      baseline;
    let par_ok =
      match par_baseline_ok with
      | None ->
        Fmt.pr "par: skipped@.";
        true
      | Some committed ->
        if not committed then begin
          Fmt.pr "par: committed snapshot has identical_outcome=false  FAIL@.";
          false
        end
        else begin
          let identical = Experiments.par_outcomes_identical () in
          Fmt.pr "par: outcome identity at 1 vs 2 domains: %s@."
            (if identical then "identical" else "DIFFERENT");
          identical
        end
    in
    let serve_ok =
      match serve_baseline with
      | None ->
        Fmt.pr "serve: skipped@.";
        true
      | Some
          ( committed_identical,
            committed_hit_rate,
            committed_ground_rate,
            committed_ns_per_ground ) ->
        if not committed_identical then begin
          Fmt.pr
            "serve: committed snapshot has identical_outcome=false  FAIL@.";
          false
        end
        else if committed_hit_rate <= 0.0 then begin
          Fmt.pr
            "serve: committed snapshot has warm hit rate 0 — caches never \
             engaged  FAIL@.";
          false
        end
        else begin
          let committed_ground_ok =
            match committed_ground_rate with
            | Some r when r <= 0.0 ->
              Fmt.pr
                "serve: committed snapshot has ground tier rate 0 — the \
                 core cache never engaged  FAIL@.";
              false
            | Some r ->
              Fmt.pr "serve: committed snapshot tier rates: decision %.2f, \
                      ground %.2f@."
                committed_hit_rate r;
              true
            | None ->
              Fmt.pr "serve: committed snapshot predates per-tier rates \
                      (decision %.2f only)@."
                committed_hit_rate;
              true
          in
          let identical, decision_rate, ground_rate =
            Experiments.serve_cached_identical ()
          in
          Fmt.pr
            "serve: cached vs uncached decisions: %s (decision tier %.2f, \
             ground tier %.2f)@."
            (if identical then "identical" else "DIFFERENT")
            decision_rate ground_rate;
          (* a zero-hit tier is fatal since the incremental grounder
             landed: context-independent cores mean even the quick
             differential's distinct contexts must hit the ground tier,
             and the memo must absorb its repeats *)
          List.iter
            (fun (tier, rate) ->
              if rate <= 0.0 then
                Fmt.pr "serve: %s tier never hit on the quick \
                        differential  FAIL@."
                  tier)
            [ ("decision", decision_rate); ("ground", ground_rate) ];
          (* the delta section's ns_per_ground gates like the asp
             benches: re-measure and hold it to the same tolerance *)
          let ground_ns_ok =
            match committed_ns_per_ground with
            | None ->
              Fmt.pr "serve: committed snapshot predates the delta \
                      section (ns_per_ground not gated)@.";
              true
            | Some base ->
              let cur = Experiments.serve_ground_ns () in
              let ratio = if base > 0.0 then cur /. base else infinity in
              let regressed = cur > base *. (1.0 +. o.tolerance) in
              Fmt.pr "serve: ns_per_ground %12.0f ns -> %10.0f ns (%.2fx)  \
                      %s@."
                base cur ratio
                (if regressed then "REGRESSION" else "ok");
              not regressed
          in
          committed_ground_ok && identical && decision_rate > 0.0
          && ground_rate > 0.0 && ground_ns_ok
        end
    in
    let serve2_ok =
      match serve2_baseline with
      | None ->
        Fmt.pr "serve2: skipped@.";
        true
      | Some (identical, provenance, coalesced, rejected, invalidations, shards)
        ->
        let problems =
          List.filter_map Fun.id
            [
              (if identical then None
               else Some "cluster not outcome-identical to the single-shard \
                          path");
              (if provenance then None
               else Some "responses misrouted (shard_provenance=false)");
              (if coalesced > 0 then None
               else Some "no duplicate work coalesced (coalesced=0)");
              (if rejected > 0 then None
               else
                 Some "backpressure overfill produced no rejection \
                       (rejected_on_overfill=0)");
              (if invalidations = 0 then None
               else
                 Some
                   (Printf.sprintf "%d cross-tenant invalidation(s)"
                      invalidations));
            ]
          @ List.filter_map
              (fun (tenant, d, g) ->
                if d <= 0.0 || g <= 0.0 then
                  Some
                    (Printf.sprintf
                       "shard %s has a zero-hit tier (decision %.2f, ground \
                        %.2f)"
                       tenant d g)
                else None)
              shards
        in
        (match problems with
        | [] ->
          Fmt.pr
            "serve2: committed snapshot: %d shard(s) outcome-identical, %d \
             coalesced, overfill rejected, 0 cross-tenant invalidations@."
            (List.length shards) coalesced
        | ps -> List.iter (fun p -> Fmt.pr "serve2: %s  FAIL@." p) ps);
        problems = []
    in
    let drift_ok =
      match drift_baseline with
      | None ->
        Fmt.pr "drift: skipped@.";
        true
      | Some (detected, false_alarms, latency, identical) ->
        let problems =
          List.filter_map Fun.id
            [
              (if detected then None
               else Some "mutation not detected (detected=false)");
              (if false_alarms = 0 then None
               else
                 Some
                   (Printf.sprintf "%d false alarm(s) on the stationary \
                                    control"
                      false_alarms));
              (if latency >= 1 then None
               else Some "detection latency missing or non-positive");
              (if identical then None
               else Some "serve path not outcome-identical");
            ]
        in
        (match problems with
        | [] ->
          Fmt.pr
            "drift: committed snapshot: detected at latency %d, 0 false \
             alarms, outcomes identical@."
            latency
        | ps -> List.iter (fun p -> Fmt.pr "drift: %s  FAIL@." p) ps);
        problems = []
    in
    if !missing > 0 then begin
      Fmt.epr "bench gate: %d baseline bench(es) have no current \
               counterpart — stale baseline?@."
        !missing;
      2
    end
    else if
      !regressions > 0 || not par_ok || not serve_ok || not serve2_ok
      || not drift_ok
    then begin
      Fmt.pr "bench gate: FAIL (%d regression(s) beyond %.0f%%%s%s%s%s)@."
        !regressions (o.tolerance *. 100.0)
        (if par_ok then "" else "; par outcomes differ")
        (if serve_ok then "" else "; serve caches unsound")
        (if serve2_ok then "" else "; multi-tenant serving unsound")
        (if drift_ok then "" else "; drift detection unsound");
      1
    end
    else begin
      Fmt.pr "bench gate: PASS@.";
      0
    end
