(* Bechamel micro-benchmarks: one Test.make per core operation, grouped.
   Printed as ns/run estimates (OLS against the run counter). *)

open Bechamel

let cav_gpm = lazy (Workloads.Cav.gpm ())

let learned_gpm =
  lazy
    (let space =
       Ilp.Hypothesis_space.generate (Workloads.Cav.modes ~max_body:2 ())
     in
     let examples =
       Workloads.Cav.examples_of (Workloads.Cav.sample ~seed:42 20)
     in
     match Ilp.Asg_learning.learn ~gpm:(Lazy.force cav_gpm) ~space ~examples () with
     | Some l -> l.Ilp.Asg_learning.gpm
     | None -> Lazy.force cav_gpm)

let scenario = lazy (List.hd (Workloads.Cav.sample ~seed:3 1))

let coloring_program n =
  let edges =
    String.concat " "
      (List.init n (fun i -> Printf.sprintf "edge(%d, %d)." i ((i + 1) mod n)))
  in
  Asp.Parser.parse_program
    (Printf.sprintf
       "node(0..%d). %s col(r). col(g). col(b). 1 { color(N, C) : col(C) } 1 \
        :- node(N). :- edge(X, Y), color(X, C), color(Y, C)."
       (n - 1) edges)

let tests () =
  let solve_prog = coloring_program 6 in
  let ground_prog = coloring_program 8 in
  [
    Test.make ~name:"asp-parse"
      (Staged.stage (fun () ->
           Asp.Parser.parse_program "q(X) :- p(X, Y), not r(Y), X > 3. p(1..5, a)."));
    Test.make ~name:"asp-ground"
      (Staged.stage (fun () -> Asp.Grounder.ground ground_prog));
    Test.make ~name:"asp-solve-6cycle"
      (Staged.stage (fun () -> Asp.Solver.solve solve_prog));
    Test.make ~name:"earley-parse"
      (Staged.stage (fun () ->
           Grammar.Earley.parses_sentence
             (Asg.Gpm.cfg (Lazy.force cav_gpm))
             "accept"));
    Test.make ~name:"asg-membership"
      (Staged.stage (fun () ->
           Asg.Membership.accepts_in_context (Lazy.force learned_gpm)
             ~context:(Workloads.Cav.to_context (Lazy.force scenario))
             "accept"));
    Test.make ~name:"pdp-decide"
      (Staged.stage (fun () ->
           Agenp.Pdp.decide (Lazy.force learned_gpm)
             ~context:(Workloads.Cav.to_context (Lazy.force scenario))
             ~options:[ "accept"; "reject" ]));
  ]

(* Seed (pre-rewrite) ns/run numbers for the same workloads, captured
   before the semi-naive grounder and counter-propagation solver landed.
   They are the committed perf baseline that BENCH_asp.json runs compare
   against; re-capture them only when intentionally re-baselining. *)
let baseline_ns : (string * float) list =
  [
    ("asp-parse", 1045.0);
    ("asp-ground", 111461.0);
    ("asp-solve-6cycle", 842024.0);
    ("earley-parse", 695.0);
    ("asg-membership", 39746.0);
    ("pdp-decide", 78676.0);
  ]

(** Persist the benchmark snapshot (baseline, current run, speedups, and
    one instrumented engine pass) as [BENCH_asp.json] in the working
    directory. Schema documented in EXPERIMENTS.md. *)
let write_snapshot (results : (string * float) list) (stats : Asp.Stats.t) =
  let oc = open_out "BENCH_asp.json" in
  let field (name, ns) = Printf.sprintf "\"%s\": %.0f" name ns in
  let speedup (name, ns) =
    match List.assoc_opt name baseline_ns with
    | Some base when ns > 0.0 -> Some (Printf.sprintf "\"%s\": %.2f" name (base /. ns))
    | _ -> None
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"bench-asp/1\",\n\
    \  \"baseline_ns_per_run\": {%s},\n\
    \  \"current_ns_per_run\": {%s},\n\
    \  \"speedup\": {%s},\n\
    \  \"stats\": %s\n\
     }\n"
    (String.concat ", " (List.map field baseline_ns))
    (String.concat ", " (List.map field results))
    (String.concat ", " (List.filter_map speedup results))
    (Asp.Stats.to_json stats);
  close_out oc

(** Measure every micro-bench for [quota] seconds each (default 0.5),
    [runs] times over (default 5), and return [(name, ns_per_run)] in
    test order, keeping each bench's {e minimum} estimate across runs —
    the shared core of the [--timings] report and the [gate] regression
    check. The min, not the mean: Bechamel's OLS is already robust
    within one run, so what remains is environmental noise (scheduler
    pressure, shared-host contention), which only ever inflates the
    estimate. *)
let measure ?(quota = 0.5) ?(runs = 5) () : (string * float) list =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
  in
  let one_run () =
    let collected = ref [] in
    List.iter
      (fun test ->
        let results = Benchmark.all cfg instances test in
        let analysis =
          Analyze.all ols Toolkit.Instance.monotonic_clock results
        in
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> collected := (name, est) :: !collected
            | _ -> ())
          analysis)
      (tests ());
    List.rev !collected
  in
  let first = one_run () in
  let best = ref first in
  for _ = 2 to runs do
    let next = one_run () in
    best :=
      List.map
        (fun (name, est) ->
          match List.assoc_opt name next with
          | Some est' -> (name, Float.min est est')
          | None -> (name, est))
        !best
  done;
  !best

(** Measure and persist BENCH_asp.json; returns the measurements. The
    gate's [--rebaseline] uses this directly so baseline capture and
    gate checks share identical measurement conditions (same quota,
    runs, and process state — heap effects from running experiments
    first measurably skew the estimates). *)
let snapshot ?quota ?runs () =
  let collected = measure ?quota ?runs () in
  (* one instrumented pass over the benchmark workloads, so the counters
     describe exactly what the numbers above measured *)
  Asp.Stats.reset ();
  ignore (Asp.Grounder.ground (coloring_program 8));
  ignore (Asp.Solver.solve (coloring_program 6));
  let stats = Asp.Stats.snapshot () in
  write_snapshot collected stats;
  (collected, stats)

let run () =
  Fmt.pr "@.==================================================@.";
  Fmt.pr "TIMINGS  Bechamel micro-benchmarks (ns/run, OLS)@.";
  Fmt.pr "==================================================@.";
  let collected, stats = snapshot () in
  List.iter
    (fun (name, est) -> Fmt.pr "%-20s %12.0f ns/run@." name est)
    collected;
  Fmt.pr "@.engine statistics (one asp-ground + one asp-solve pass):@.%a@."
    Asp.Stats.pp stats;
  Fmt.pr "@.snapshot written to BENCH_asp.json@.";
  List.iter
    (fun (name, est) ->
      match List.assoc_opt name baseline_ns with
      | Some base when est > 0.0 ->
        Fmt.pr "%-20s %12.2fx vs baseline@." name (base /. est)
      | _ -> ())
    collected
