(* The experiment harness: one function per DESIGN.md experiment row.
   Each prints the table/series the paper's evaluation implies. *)

let section title =
  Fmt.pr "@.==================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "==================================================@."

let hypothesis_lines (l : Ilp.Asg_learning.learned) =
  Ilp.Asg_learning.hypothesis_text l

(* ---- FIG1: the learning workflow (Figure 1) ------------------------- *)

let fig1_workflow ~quick:_ () =
  section "FIG1  Learning workflow: initial ASG + examples -> learned ASG";
  let gpm = Workloads.Cav.gpm () in
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  Fmt.pr "initial grammar: %d productions, hypothesis space: %d rules@."
    (List.length (Grammar.Cfg.productions (Asg.Gpm.cfg gpm)))
    (Ilp.Hypothesis_space.size space);
  let test = Workloads.Cav.all_scenarios () in
  Fmt.pr "%-10s %-10s %-10s %s@." "examples" "rules" "cost" "accuracy(full space)";
  List.iter
    (fun n ->
      let scenarios = Workloads.Cav.sample ~seed:42 n in
      let examples = Workloads.Cav.examples_of scenarios in
      match Ilp.Asg_learning.learn ~gpm ~space ~examples () with
      | None -> Fmt.pr "%-10d (no solution)@." n
      | Some l ->
        Fmt.pr "%-10d %-10d %-10d %.3f@." n
          (List.length l.Ilp.Asg_learning.outcome.Ilp.Learner.hypothesis)
          l.Ilp.Asg_learning.outcome.Ilp.Learner.cost
          (Workloads.Cav.gpm_accuracy l.Ilp.Asg_learning.gpm test))
    [ 4; 8; 16; 32; 64 ];
  (match
     Ilp.Asg_learning.learn ~gpm ~space
       ~examples:(Workloads.Cav.examples_of (Workloads.Cav.sample ~seed:42 64))
       ()
   with
  | Some l ->
    Fmt.pr "final learned GPM:@.";
    List.iter (Fmt.pr "  %s@.") (hypothesis_lines l)
  | None -> ())

(* ---- FIG2: the architecture closed loop (Figure 2) ------------------ *)

let cav_oracle context opt =
  let facts = Asp.Program.facts context in
  let find pred =
    List.find_map
      (fun (a : Asp.Atom.t) ->
        if a.Asp.Atom.pred = pred then
          match a.Asp.Atom.args with
          | [ Asp.Term.Fun (v, []) ] -> Some (`S v)
          | [ Asp.Term.Int v ] -> Some (`I v)
          | _ -> None
        else None)
      facts
  in
  let s = function Some (`S v) -> v | _ -> "" in
  let i = function Some (`I v) -> v | _ -> 0 in
  let scenario =
    { Workloads.Cav.task = s (find "task"); vehicle_loa = i (find "vehicle_loa");
      region_loa = i (find "region_loa"); weather = s (find "weather");
      time = s (find "time") }
  in
  let ok = Workloads.Cav.ground_truth scenario in
  match opt with "accept" -> ok | _ -> not ok

let cav_spec : Agenp.Prep.pbms_spec =
  {
    Agenp.Prep.grammar_text =
      {| start -> decision {
           task_req(turn, 2). task_req(straight, 1).
           task_req(overtake, 4). task_req(park, 3).
           needed_loa(R) :- task(T), task_req(T, R).
         }
         decision -> "accept" { result(accept). } | "reject" { result(reject). } |};
    global_constraints = [];
  }

let make_cav_ams ~name ~seed () =
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  Agenp.Ams.create ~name ~seed ~spec:cav_spec ~space
    { Agenp.Ams.options = [ "accept"; "reject" ]; oracle = cav_oracle;
      audit_rate = 0.3 }

let fig2_loop ~quick () =
  section "FIG2  Architecture closed loop: decide -> monitor -> adapt -> regenerate";
  let ams = make_cav_ams ~name:"cav" ~seed:1 () in
  let n = if quick then 40 else 80 in
  let window = 10 in
  let correct = ref 0 and seen = ref 0 in
  Fmt.pr "%-10s %-14s %-12s %s@." "requests" "window-compl." "adaptations" "repr-versions";
  List.iteri
    (fun i s ->
      let r = Agenp.Ams.handle_request ams (Workloads.Cav.to_context s) in
      incr seen;
      if Agenp.Pep.compliant r then incr correct;
      if (i + 1) mod window = 0 then begin
        Fmt.pr "%-10d %-14.2f %-12d %d@." (i + 1)
          (float_of_int !correct /. float_of_int !seen)
          (Agenp.Ams.relearn_count ams)
          (Agenp.Repository.representation_count (Agenp.Ams.repository ams));
        correct := 0;
        seen := 0
      end)
    (Workloads.Cav.sample ~seed:100 n);
  Fmt.pr "final learned rules:@.";
  List.iter
    (fun (c : Ilp.Hypothesis_space.candidate) ->
      Fmt.pr "  [pr%d] %s@." c.prod_id (Asg.Annotation.rule_to_string c.rule))
    (Agenp.Ams.hypothesis ams)

(* ---- FIG3a: correctly learned XACML policies ------------------------- *)

let fig3a ~quick () =
  section "FIG3a  Correctly learned XACML policies (clean log)";
  let n = if quick then 40 else 80 in
  let log = Workloads.Xacml_logs.log ~seed:1 ~n () in
  let examples = Policy.Xacml.examples_of_log log in
  let space = Ilp.Hypothesis_space.generate (Workloads.Xacml_logs.modes ()) in
  match Ilp.Asg_learning.learn ~gpm:(Workloads.Xacml_logs.gpm ()) ~space ~examples () with
  | None -> Fmt.pr "no solution@."
  | Some l ->
    let policy, leftovers =
      Policy.Xacml.policy_of_hypothesis ~pid:"learned"
        l.Ilp.Asg_learning.outcome.Ilp.Learner.hypothesis
    in
    Fmt.pr "%a@." Policy.Rule_policy.pp policy;
    List.iter (Fmt.pr "  (asp) %s@.") leftovers;
    Fmt.pr "log entries: %d | full-space accuracy: %.3f@." n
      (Workloads.Xacml_logs.gpm_accuracy l.Ilp.Asg_learning.gpm
         (Workloads.Xacml_logs.request_space ()))

(* ---- FIG3b-1: overfitting vs background knowledge -------------------- *)

let fig3b_overfit ~quick () =
  section "FIG3b-1  Overfitting on small logs; background knowledge (role hierarchy) as mitigation";
  let sizes = if quick then [ 6; 12; 24 ] else [ 6; 12; 24; 48; 96 ] in
  let space_flat = Ilp.Hypothesis_space.generate (Workloads.Xacml_logs.modes ()) in
  let space_h = Ilp.Hypothesis_space.generate (Workloads.Xacml_logs.hierarchy_modes ()) in
  let full = Workloads.Xacml_logs.request_space () in
  Fmt.pr "%-8s %-18s %-18s@." "log-n" "flat-accuracy" "hierarchy-accuracy";
  List.iter
    (fun n ->
      let log = Workloads.Xacml_logs.log ~seed:1 ~n () in
      let examples = Policy.Xacml.examples_of_log log in
      let acc gpm space =
        match Ilp.Asg_learning.learn ~gpm ~space ~examples () with
        | Some l -> Workloads.Xacml_logs.gpm_accuracy l.Ilp.Asg_learning.gpm full
        | None -> nan
      in
      Fmt.pr "%-8d %-18.3f %-18.3f@." n
        (acc (Workloads.Xacml_logs.gpm ()) space_flat)
        (acc (Workloads.Xacml_logs.gpm_with_hierarchy ()) space_h))
    sizes

(* ---- FIG3b-2: unsafe generalization on role-sparse logs -------------- *)

let fig3b_unsafe ~quick:_ () =
  section "FIG3b-2  Unsafe generalization: roles unseen in training get over-permitted";
  let visible_roles = [ "intern"; "admin" ] in
  let hidden_roles = [ "manager"; "developer"; "auditor" ] in
  let log = Workloads.Xacml_logs.sparse_log ~seed:2 ~n:40 ~visible_roles () in
  let examples = Policy.Xacml.examples_of_log log in
  let hidden_requests =
    List.filter
      (fun r ->
        match Policy.Request.find (Policy.Attribute.subject "role") r with
        | Some (Policy.Attribute.Str role) -> List.mem role hidden_roles
        | _ -> false)
      (Workloads.Xacml_logs.request_space ())
  in
  let false_permit_rate gpm =
    let bad =
      List.filter
        (fun r ->
          Policy.Xacml.decide gpm r = Policy.Decision.Permit
          && Workloads.Xacml_logs.ground_truth_decision r = Policy.Decision.Deny)
        hidden_requests
    in
    float_of_int (List.length bad) /. float_of_int (List.length hidden_requests)
  in
  let run label gpm modes =
    let space = Ilp.Hypothesis_space.generate modes in
    match Ilp.Asg_learning.learn ~gpm ~space ~examples () with
    | Some l ->
      Fmt.pr "%-28s false-permit rate on unseen roles: %.3f@." label
        (false_permit_rate l.Ilp.Asg_learning.gpm)
    | None -> Fmt.pr "%-28s no solution@." label
  in
  Fmt.pr "training roles: %s | hidden roles: %s (%d requests)@."
    (String.concat "," visible_roles)
    (String.concat "," hidden_roles)
    (List.length hidden_requests);
  run "role-enumerating (unsafe)" (Workloads.Xacml_logs.gpm ())
    (Workloads.Xacml_logs.modes ());
  run "seniority-restricted (safe)" (Workloads.Xacml_logs.gpm_with_hierarchy ())
    (Workloads.Xacml_logs.hierarchy_modes ())

(* ---- FIG3b-3: noisy logs and filtering -------------------------------- *)

let fig3b_noise ~quick () =
  section "FIG3b-3  Noisy logs: irrelevant responses misread as denials; filtering as mitigation";
  let n = if quick then 40 else 80 in
  let full = Workloads.Xacml_logs.request_space () in
  Fmt.pr "%-12s %-12s %-16s %-16s@." "irrelevant%" "flip%" "unfiltered-acc" "filtered-acc";
  List.iter
    (fun (irrelevant, flip) ->
      let log = Workloads.Xacml_logs.noisy_log ~seed:5 ~n ~flip ~irrelevant () in
      let acc keep =
        let examples =
          Policy.Xacml.examples_of_log ~keep_irrelevant:keep ~weight:3 log
        in
        let space = Ilp.Hypothesis_space.generate (Workloads.Xacml_logs.modes ()) in
        match
          Ilp.Asg_learning.learn ~gpm:(Workloads.Xacml_logs.gpm ()) ~space
            ~examples ()
        with
        | Some l -> Workloads.Xacml_logs.gpm_accuracy l.Ilp.Asg_learning.gpm full
        | None -> nan
      in
      Fmt.pr "%-12.0f %-12.0f %-16.3f %-16.3f@." (100. *. irrelevant)
        (100. *. flip) (acc true) (acc false))
    [ (0.1, 0.0); (0.2, 0.0); (0.2, 0.05) ]

(* ---- CAV: symbolic learner vs shallow ML ------------------------------ *)

let cav_curve ~quick () =
  section "CAV  Learning curves: ASG-based GPM vs shallow ML (Section IV-A claim)";
  let sizes = if quick then [ 5; 10; 20; 40 ] else [ 5; 10; 20; 40; 80; 160 ] in
  let train = Workloads.Cav.sample ~seed:42 (List.fold_left max 0 sizes) in
  let test = Workloads.Cav.sample ~seed:7 300 in
  let test_ds = Workloads.Cav.to_dataset test in
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  let classifiers =
    [ Ml.Eval.decision_tree; Ml.Eval.naive_bayes; Ml.Eval.knn ~k:3 ();
      Ml.Eval.majority_class ]
  in
  Fmt.pr "%-8s %-10s" "n" "asg-gpm";
  List.iter (fun c -> Fmt.pr " %-14s" c.Ml.Eval.name) classifiers;
  Fmt.pr "@.";
  List.iter
    (fun n ->
      let sub = List.filteri (fun i _ -> i < n) train in
      let asg_acc =
        match
          Ilp.Asg_learning.learn ~gpm:(Workloads.Cav.gpm ()) ~space
            ~examples:(Workloads.Cav.examples_of sub) ()
        with
        | Some l -> Workloads.Cav.gpm_accuracy l.Ilp.Asg_learning.gpm test
        | None -> nan
      in
      Fmt.pr "%-8d %-10.3f" n asg_acc;
      let train_ds = Workloads.Cav.to_dataset sub in
      List.iter
        (fun c ->
          let predict = c.Ml.Eval.train train_ds in
          Fmt.pr " %-14.3f" (Ml.Eval.accuracy predict test_ds))
        classifiers;
      Fmt.pr "@.")
    sizes

(* ---- RESUP: mission-over-mission improvement -------------------------- *)

let resupply ~quick () =
  section "RESUP  Resupply: accuracy over missions; risk-appetite shift at mission 15";
  let n = if quick then 20 else 30 in
  let space = Ilp.Hypothesis_space.generate (Workloads.Resupply.modes ()) in
  let campaign = Workloads.Resupply.campaign ~seed:21 ~n ~shift_at:15 () in
  let test = Workloads.Resupply.campaign ~seed:99 ~n:40 ~shift_at:20 () in
  Fmt.pr "%-10s %-10s %-10s@." "missions" "examples" "accuracy";
  let seen = ref [] in
  List.iteri
    (fun i m ->
      seen := !seen @ [ m ];
      if (i + 1) mod 5 = 0 then begin
        let examples =
          List.concat_map Workloads.Resupply.examples_of_mission !seen
        in
        match
          Ilp.Asg_learning.learn ~gpm:(Workloads.Resupply.gpm ()) ~space
            ~examples ()
        with
        | Some l ->
          Fmt.pr "%-10d %-10d %-10.3f@." (i + 1) (List.length examples)
            (Workloads.Resupply.gpm_accuracy l.Ilp.Asg_learning.gpm test)
        | None -> Fmt.pr "%-10d %-10d (no solution)@." (i + 1) (List.length examples)
      end)
    campaign

(* ---- CONVOY: structured policy strings with structural counting -------- *)

let convoy ~quick () =
  section "CONVOY  Convoy composition: learned ratio constraints on structured policies";
  let space = Ilp.Hypothesis_space.generate (Workloads.Convoy.modes ()) in
  Fmt.pr "space: %d candidates@." (Ilp.Hypothesis_space.size space);
  let sizes = if quick then [ 20; 40 ] else [ 20; 40; 80; 160 ] in
  let test = Workloads.Convoy.all_situations () in
  Fmt.pr "%-10s %-10s %-10s@." "examples" "rules" "accuracy";
  let last = ref None in
  List.iter
    (fun n ->
      let train = Workloads.Convoy.sample ~seed:11 n in
      let examples = Workloads.Convoy.examples_of train in
      match
        Ilp.Asg_learning.learn ~gpm:(Workloads.Convoy.gpm ()) ~space ~examples ()
      with
      | None -> Fmt.pr "%-10d (no solution)@." n
      | Some l ->
        last := Some l;
        Fmt.pr "%-10d %-10d %-10.3f@." n
          (List.length l.Ilp.Asg_learning.outcome.Ilp.Learner.hypothesis)
          (Workloads.Convoy.gpm_accuracy l.Ilp.Asg_learning.gpm test))
    sizes;
  match !last with
  | None -> ()
  | Some l ->
    Fmt.pr "learned composition policy:@.";
    List.iter (Fmt.pr "  %s@.") (Ilp.Asg_learning.hypothesis_text l);
    Fmt.pr "deployable at threat 3 (first 5): %a@."
      Fmt.(list ~sep:(any " | ") string)
      (List.filteri (fun i _ -> i < 5)
         (Workloads.Convoy.deployable ~max_depth:6 l.Ilp.Asg_learning.gpm
            ~threat:3))

(* ---- SHARE: coalition policy sharing ---------------------------------- *)

let sharing ~quick () =
  section "SHARE  Coalition sharing: accuracy of a fresh member before/after gossip";
  let ks = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let fresh_eval ams scenarios =
    let correct =
      List.length
        (List.filter
           (fun s ->
             let d =
               Agenp.Pdp.decide (Agenp.Ams.gpm ams)
                 ~context:(Workloads.Cav.to_context s)
                 ~options:[ "accept"; "reject" ]
             in
             (d.Serve.Decision.chosen = "accept") = Workloads.Cav.ground_truth s)
           scenarios)
    in
    float_of_int correct /. float_of_int (List.length scenarios)
  in
  let test = Workloads.Cav.sample ~seed:400 100 in
  Fmt.pr "%-10s %-16s %-16s %-10s@." "members" "newcomer-before" "newcomer-after" "adopted";
  List.iter
    (fun k ->
      let coalition = Agenp.Coalition.create () in
      (* k experienced members, each having seen 30 requests *)
      List.iter
        (fun j ->
          let ams = make_cav_ams ~name:(Printf.sprintf "m%d" j) ~seed:j () in
          List.iter
            (fun s ->
              ignore (Agenp.Ams.handle_request ams (Workloads.Cav.to_context s)))
            (Workloads.Cav.sample ~seed:(100 + j) 30);
          (* consolidate: make sure each member publishes a learned model *)
          ignore (Agenp.Ams.relearn ams);
          Agenp.Coalition.add_member coalition ams)
        (List.init k Fun.id);
      let newcomer = make_cav_ams ~name:"newcomer" ~seed:77 () in
      (* the newcomer's own evidence: a short audited burn-in covering both
         decisions, used by its PCP to vet shared rules *)
      List.iter
        (fun s ->
          let gt = Workloads.Cav.ground_truth s in
          Agenp.Ams.learn_from newcomer ~context:(Workloads.Cav.to_context s)
            "accept" ~valid:gt;
          Agenp.Ams.learn_from newcomer ~context:(Workloads.Cav.to_context s)
            "reject" ~valid:(not gt))
        (Workloads.Cav.sample ~seed:300 15);
      Agenp.Coalition.add_member coalition newcomer;
      let before = fresh_eval newcomer test in
      let adopted = Agenp.Coalition.gossip_round coalition in
      let after = fresh_eval newcomer test in
      Fmt.pr "%-10d %-16.3f %-16.3f %-10d@." k before after adopted)
    ks

(* ---- BYZ: Byzantine members and the PCP gate --------------------------- *)

let byzantine ~quick () =
  section "BYZ  Byzantine sharing: PCP validation vs naive trust under malicious members";
  let bad_rules =
    Ilp.Hypothesis_space.of_rules
      [ (":- result(accept)@1.", [ 0 ]); (":- result(reject)@1.", [ 0 ]) ]
  in
  let test = Workloads.Cav.sample ~seed:400 100 in
  let accuracy ams =
    float_of_int
      (List.length
         (List.filter
            (fun s ->
              let d =
                Agenp.Pdp.decide (Agenp.Ams.gpm ams)
                  ~context:(Workloads.Cav.to_context s)
                  ~options:[ "accept"; "reject" ]
              in
              (d.Serve.Decision.chosen = "accept") = Workloads.Cav.ground_truth s)
            test))
    /. 100.0
  in
  let run gate malicious =
    let coalition = Agenp.Coalition.create () in
    (* two honest members with learned models *)
    List.iter
      (fun j ->
        let ams = make_cav_ams ~name:(Printf.sprintf "honest%d" j) ~seed:j () in
        List.iter
          (fun s ->
            ignore (Agenp.Ams.handle_request ams (Workloads.Cav.to_context s)))
          (Workloads.Cav.sample ~seed:(100 + j) 30);
        ignore (Agenp.Ams.relearn ams);
        Agenp.Coalition.add_member coalition ams)
      [ 0; 1 ];
    (* malicious members publish harmful rules *)
    List.iter
      (fun j ->
        Agenp.Coalition.publish_raw coalition
          ~author:(Printf.sprintf "malicious%d" j)
          bad_rules)
      (List.init malicious Fun.id);
    let newcomer = make_cav_ams ~name:"newcomer" ~seed:77 () in
    List.iter
      (fun s ->
        let gt = Workloads.Cav.ground_truth s in
        Agenp.Ams.learn_from newcomer ~context:(Workloads.Cav.to_context s)
          "accept" ~valid:gt;
        Agenp.Ams.learn_from newcomer ~context:(Workloads.Cav.to_context s)
          "reject" ~valid:(not gt))
      (Workloads.Cav.sample ~seed:300 15);
    Agenp.Coalition.add_member coalition newcomer;
    ignore (Agenp.Coalition.gossip_round ?gate:(Some gate) coalition);
    accuracy newcomer
  in
  let ms = if quick then [ 0; 2 ] else [ 0; 1; 2; 4 ] in
  Fmt.pr "%-12s %-18s %-18s@." "malicious" "pcp-gate" "trust-all";
  List.iter
    (fun m -> Fmt.pr "%-12d %-18.3f %-18.3f@." m (run `Pcp m) (run `Trust_all m))
    ms

(* ---- QUAL: policy quality metrics -------------------------------------- *)

let quality ~quick:_ () =
  section "QUAL  Quality metrics (Section V-A): learned vs degraded policy sets";
  let space = Workloads.Xacml_logs.request_space () in
  let log = Workloads.Xacml_logs.log ~seed:1 ~n:80 () in
  let examples = Policy.Xacml.examples_of_log log in
  let hspace = Ilp.Hypothesis_space.generate (Workloads.Xacml_logs.modes ()) in
  (match
     Ilp.Asg_learning.learn ~gpm:(Workloads.Xacml_logs.gpm ()) ~space:hspace
       ~examples ()
   with
  | None -> Fmt.pr "learning failed@."
  | Some l ->
    let learned_policy, _ =
      Policy.Xacml.policy_of_hypothesis ~pid:"learned"
        l.Ilp.Asg_learning.outcome.Ilp.Learner.hypothesis
    in
    (* complete the rendered policy with the default-permit the GPM implies *)
    let completed =
      {
        learned_policy with
        Policy.Rule_policy.rules =
          learned_policy.Policy.Rule_policy.rules
          @ [ Policy.Rule_policy.rule ~effect:Policy.Rule_policy.Permit "default" ];
      }
    in
    let show label p =
      Fmt.pr "%-22s %a@." label Policy.Quality.pp (Policy.Quality.assess p space)
    in
    show "ground truth" (Workloads.Xacml_logs.ground_truth_policy ());
    show "learned (+default)" completed;
    (* degraded variants *)
    let with_redundant =
      { completed with
        Policy.Rule_policy.rules =
          completed.Policy.Rule_policy.rules
          @ [ Policy.Rule_policy.rule ~effect:Policy.Rule_policy.Permit "dup-default" ] }
    in
    show "+redundant rule" with_redundant;
    let without_default = learned_policy in
    show "-default (incomplete)" without_default;
    let conflicting =
      { completed with
        Policy.Rule_policy.rules =
          Policy.Rule_policy.rule ~effect:Policy.Rule_policy.Permit
            ~condition:
              (Policy.Expr.Equals
                 (Policy.Attribute.action "id", Policy.Attribute.Str "delete"))
            "rogue-permit-delete"
          :: completed.Policy.Rule_policy.rules }
    in
    show "+conflicting rule" conflicting);
  (* hypothesis-level minimality via the PCP *)
  Fmt.pr "(minimality of learned hypotheses is asserted by the PCP; see tests)@."

(* ---- EXPL: explainability ---------------------------------------------- *)

let explain ~quick () =
  section "EXPL  Explainability: why-not and counterfactual coverage on rejections";
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  let train = Workloads.Cav.sample ~seed:42 60 in
  match
    Ilp.Asg_learning.learn ~gpm:(Workloads.Cav.gpm ()) ~space
      ~examples:(Workloads.Cav.examples_of train) ()
  with
  | None -> Fmt.pr "learning failed@."
  | Some l ->
    let g = l.Ilp.Asg_learning.gpm in
    let n = if quick then 60 else 150 in
    let rejected =
      List.filter
        (fun s -> not (Workloads.Cav.decide g s))
        (Workloads.Cav.sample ~seed:500 n)
    in
    let explained = ref 0 and counterfactuals = ref 0 in
    let example_shown = ref false in
    List.iter
      (fun s ->
        let ctx = Workloads.Cav.to_context s in
        (match Explain.Why.why_not g ~context:ctx "accept" with
        | Explain.Why.Blocked (b :: _ as bs) ->
          incr explained;
          if not !example_shown then begin
            example_shown := true;
            Fmt.pr "sample rejection (%s, loa %d, %s, %s):@."
              s.Workloads.Cav.task s.Workloads.Cav.vehicle_loa
              s.Workloads.Cav.weather s.Workloads.Cav.time;
            List.iter (fun b -> Fmt.pr "  why-not: %a@." Explain.Why.pp_blocker b) bs;
            ignore b
          end
        | _ -> ());
        let alternatives (a : Asp.Atom.t) =
          match a.Asp.Atom.pred with
          | "weather" ->
            List.filter_map
              (fun w ->
                let alt = Asp.Atom.make "weather" [ Asp.Term.const w ] in
                if Asp.Atom.equal alt a then None else Some alt)
              Workloads.Cav.weathers
          | "vehicle_loa" ->
            List.filter_map
              (fun v ->
                let alt = Asp.Atom.make "vehicle_loa" [ Asp.Term.int v ] in
                if Asp.Atom.equal alt a then None else Some alt)
              [ 1; 2; 3; 4; 5 ]
          | _ -> []
        in
        match
          Explain.Counterfactual.find ~alternatives g
            ~facts:(Asp.Program.facts ctx) "accept"
        with
        | Some changes ->
          incr counterfactuals;
          if !counterfactuals = 1 then
            Fmt.pr "  counterfactual: %s@."
              (Explain.Counterfactual.to_sentence "accept" changes)
        | None -> ())
      rejected;
    Fmt.pr "rejections: %d | why-not explained: %d | counterfactual found: %d@."
      (List.length rejected) !explained !counterfactuals

(* ---- DSHARE / FED: the remaining application scenarios ---------------- *)

let datashare ~quick () =
  section "DSHARE  Data sharing: learned helper-service selection (Section IV-D)";
  let space = Ilp.Hypothesis_space.generate (Workloads.Data_sharing.modes ()) in
  let sizes = if quick then [ 10; 20; 40 ] else [ 10; 20; 40; 80 ] in
  let test = Workloads.Data_sharing.sample ~seed:9 200 in
  Fmt.pr "%-8s %-10s %-10s@." "items" "rules" "accuracy";
  List.iter
    (fun n ->
      let items = Workloads.Data_sharing.sample ~seed:8 n in
      match
        Ilp.Asg_learning.learn ~gpm:(Workloads.Data_sharing.gpm ()) ~space
          ~examples:(Workloads.Data_sharing.examples_of items) ()
      with
      | Some l ->
        Fmt.pr "%-8d %-10d %-10.3f@." n
          (List.length l.Ilp.Asg_learning.outcome.Ilp.Learner.hypothesis)
          (Workloads.Data_sharing.gpm_accuracy l.Ilp.Asg_learning.gpm test)
      | None -> Fmt.pr "%-8d (no solution)@." n)
    sizes

let federated ~quick () =
  section "FED  Federated learning: model-incorporation policies (Section IV-E)";
  let space = Ilp.Hypothesis_space.generate (Workloads.Federated.modes ()) in
  let sizes = if quick then [ 10; 20; 40 ] else [ 10; 20; 40; 80 ] in
  let test = Workloads.Federated.sample ~seed:14 200 in
  Fmt.pr "%-8s %-10s %-10s@." "offers" "rules" "accuracy";
  List.iter
    (fun n ->
      let offers = Workloads.Federated.sample ~seed:13 n in
      match
        Ilp.Asg_learning.learn ~gpm:(Workloads.Federated.gpm ()) ~space
          ~examples:(Workloads.Federated.examples_of offers) ()
      with
      | Some l ->
        Fmt.pr "%-8d %-10d %-10.3f@." n
          (List.length l.Ilp.Asg_learning.outcome.Ilp.Learner.hypothesis)
          (Workloads.Federated.gpm_accuracy l.Ilp.Asg_learning.gpm test)
      | None -> Fmt.pr "%-8d (no solution)@." n)
    sizes

(* ---- UTIL: utility-based policies (paper's type-iii taxonomy) --------- *)

let utility ~quick () =
  section "UTIL  Utility-based policies: weak-constraint route selection (Section I taxonomy, type iii)";
  let space = Ilp.Hypothesis_space.generate (Workloads.Resupply.modes ()) in
  let n = if quick then 15 else 25 in
  let missions = Workloads.Resupply.campaign ~seed:21 ~n () in
  let examples =
    List.concat_map Workloads.Resupply.examples_of_mission missions
  in
  match
    Ilp.Asg_learning.learn ~gpm:(Workloads.Resupply.gpm ()) ~space ~examples ()
  with
  | None -> Fmt.pr "learning failed@."
  | Some l ->
    (* transplant learned validity constraints onto the utility GPM *)
    let util_gpm =
      Ilp.Task.apply_hypothesis
        (Workloads.Resupply.utility_gpm ())
        l.Ilp.Asg_learning.outcome.Ilp.Learner.hypothesis
    in
    let plain_gpm = l.Ilp.Asg_learning.gpm in
    let test = Workloads.Resupply.campaign ~seed:99 ~n:40 ~shift_at:20 () in
    let first_valid g m =
      match Workloads.Resupply.options g m with r :: _ -> Some r | [] -> None
    in
    let optimality pick =
      float_of_int
        (List.length
           (List.filter
              (fun m ->
                match (pick m, Workloads.Resupply.best_route_oracle m) with
                | None, None -> true
                | Some r, Some best ->
                  Workloads.Resupply.route_valid m r
                  && Workloads.Resupply.route_cost m r
                     = Workloads.Resupply.route_cost m best
                | _ -> false)
              test))
      /. float_of_int (List.length test)
    in
    Fmt.pr "%-34s %-10s@." "selection policy" "optimal-rate";
    Fmt.pr "%-34s %-10.3f@." "any valid route (constraints only)"
      (optimality (first_valid plain_gpm));
    Fmt.pr "%-34s %-10.3f@." "min-cost valid route (weak constr.)"
      (optimality (fun m -> Workloads.Resupply.best_route util_gpm m));
    let m = List.hd test in
    Fmt.pr "sample mission (N=%d S=%d R=%d, %s, %s): ranked %a@."
      m.Workloads.Resupply.threat_north m.Workloads.Resupply.threat_south
      m.Workloads.Resupply.threat_river m.Workloads.Resupply.weather
      m.Workloads.Resupply.time
      Fmt.(
        list ~sep:(any ", ") (fun ppf (s, c) -> Fmt.pf ppf "%s[%d]" s c))
      (Asg.Language.ranked_sentences_in_context ~max_depth:4 util_gpm
         ~context:(Workloads.Resupply.to_context m))

(* ---- PREF: learning value functions from ordering examples ------------- *)

let preference ~quick () =
  section "PREF  Preference learning: value functions from ordering examples";
  let modes =
    Ilp.Mode.make ~target_prods:[ 0 ]
      ~heads:
        [ Ilp.Mode.WeakHead (Ilp.Mode.VarOperand "t");
          Ilp.Mode.WeakHead (Ilp.Mode.IntOperand 1);
          Ilp.Mode.WeakHead (Ilp.Mode.IntOperand 2) ]
      ~bodies:
        [ Ilp.Mode.matom ~required:true ~site:(Some 1) "chosen"
            [ Ilp.Mode.Variable "rt" ];
          Ilp.Mode.matom ~required:true ~site:(Some 1) "chosen"
            [ Ilp.Mode.Constants Workloads.Resupply.routes ];
          Ilp.Mode.matom "threat" [ Ilp.Mode.Variable "rt"; Ilp.Mode.Variable "t" ];
          Ilp.Mode.matom "weather" [ Ilp.Mode.Constants Workloads.Resupply.weathers ];
          Ilp.Mode.matom "time" [ Ilp.Mode.Constants Workloads.Resupply.times ] ]
      ~max_body:2 ()
  in
  let space = Ilp.Hypothesis_space.generate modes in
  Fmt.pr "weak-constraint space: %d candidates@." (Ilp.Hypothesis_space.size space);
  let sizes = if quick then [ 6; 12 ] else [ 6; 12; 24; 48 ] in
  let test = Workloads.Resupply.campaign ~seed:99 ~n:40 ~shift_at:20 () in
  (* validity constraints learned separately, as in UTIL *)
  let validity =
    let vspace = Ilp.Hypothesis_space.generate (Workloads.Resupply.modes ()) in
    let missions = Workloads.Resupply.campaign ~seed:21 ~n:25 () in
    let examples =
      List.concat_map Workloads.Resupply.examples_of_mission missions
    in
    match
      Ilp.Asg_learning.learn ~gpm:(Workloads.Resupply.gpm ()) ~space:vspace
        ~examples ()
    with
    | Some l -> l.Ilp.Asg_learning.outcome.Ilp.Learner.hypothesis
    | None -> []
  in
  Fmt.pr "%-10s %-12s %-12s %-14s@." "missions" "orderings" "weak-rules" "optimal-rate";
  List.iter
    (fun n ->
      let missions = Workloads.Resupply.campaign ~seed:5 ~n () in
      let orderings =
        List.concat_map
          (fun m ->
            let ctx = Workloads.Resupply.to_context m in
            let valid =
              List.filter (Workloads.Resupply.route_valid m)
                Workloads.Resupply.routes
            in
            List.concat_map
              (fun r1 ->
                List.filter_map
                  (fun r2 ->
                    if
                      r1 <> r2
                      && Workloads.Resupply.route_cost m r1
                         < Workloads.Resupply.route_cost m r2
                    then Some (Ilp.Preference.prefer ~context:ctx r1 r2)
                    else None)
                  valid)
              valid)
          missions
      in
      match
        Ilp.Preference.learn ~gpm:(Workloads.Resupply.gpm ()) ~space ~orderings ()
      with
      | None -> Fmt.pr "%-10d %-12d (no hypothesis)@." n (List.length orderings)
      | Some o ->
        (* combine learned validity + learned preferences *)
        let full_gpm =
          Ilp.Task.apply_hypothesis
            (Ilp.Task.apply_hypothesis (Workloads.Resupply.gpm ()) validity)
            o.Ilp.Preference.hypothesis
        in
        Fmt.pr "%-10d %-12d %-12d %-14.3f@." n (List.length orderings)
          (List.length o.Ilp.Preference.hypothesis)
          (Workloads.Resupply.utility_accuracy full_gpm test))
    sizes

(* ---- PERF: scalability of the solver and learner ----------------------- *)

let median_time f =
  let runs =
    List.init 3 (fun _ ->
        let t0 = Sys.time () in
        ignore (f ());
        Sys.time () -. t0)
  in
  match List.sort compare runs with _ :: m :: _ -> m | [ m ] -> m | [] -> 0.0

let perf ~quick () =
  section "PERF  Scalability (Section III-B performance-optimization direction)";
  (* solver: graph coloring of growing cycles *)
  Fmt.pr "-- stable-model solving: 3-coloring an n-cycle (all models)@.";
  Fmt.pr "%-8s %-12s %-12s %-10s@." "n" "atoms" "rules" "seconds";
  let ns = if quick then [ 4; 6; 8 ] else [ 4; 6; 8; 10; 12 ] in
  List.iter
    (fun n ->
      let edges =
        String.concat " "
          (List.init n (fun i ->
               Printf.sprintf "edge(%d, %d)." i ((i + 1) mod n)))
      in
      let prog =
        Asp.Parser.parse_program
          (Printf.sprintf
             "node(0..%d). %s col(r). col(g). col(b). 1 { color(N, C) : col(C) \
              } 1 :- node(N). :- edge(X, Y), color(X, C), color(Y, C)."
             (n - 1) edges)
      in
      let gp = Asp.Grounder.ground prog in
      let t = median_time (fun () -> Asp.Solver.solve_ground gp) in
      Fmt.pr "%-8d %-12d %-12d %-10.4f@." n (Asp.Grounder.atom_count gp)
        (Asp.Grounder.size gp) t)
    ns;
  (* ablation: well-founded narrowing on/off, over programs mixing
     positive loops (unfounded sets) and even negative loops. A negative
     result is expected and honest: the DPLL's own propagation with
     false-first branching subsumes the narrowing at these scales. *)
  Fmt.pr "-- ablation: well-founded narrowing in the solver (mixed loops)@.";
  Fmt.pr "%-8s %-14s %-14s@." "k" "WF-on (s)" "WF-off (s)";
  List.iter
    (fun k ->
      let loops =
        String.concat " "
          (List.init k (fun i ->
               Printf.sprintf
                 "a%d :- b%d. b%d :- a%d. p%d :- not q%d. q%d :- not p%d. :-                   q%d, a%d."
                 i i i i i i i i i i))
      in
      let gp = Asp.Grounder.ground (Asp.Parser.parse_program loops) in
      let t_on = median_time (fun () -> Asp.Solver.solve_ground ~limit:1 gp) in
      let t_off =
        median_time (fun () ->
            Asp.Solver.solve_ground ~wellfounded:false ~limit:1 gp)
      in
      Fmt.pr "%-8d %-14.5f %-14.5f@." k t_on t_off)
    (if quick then [ 20; 50 ] else [ 20; 50; 100 ]);
  (* learner: time vs hypothesis-space size *)
  Fmt.pr "-- learning: time vs hypothesis-space size (CAV, 40 scenarios)@.";
  Fmt.pr "%-12s %-10s %-10s@." "space-size" "seconds" "cost";
  let examples = Workloads.Cav.examples_of (Workloads.Cav.sample ~seed:42 40) in
  List.iter
    (fun max_body ->
      let space =
        Ilp.Hypothesis_space.generate (Workloads.Cav.modes ~max_body ())
      in
      let task = Ilp.Task.make ~gpm:(Workloads.Cav.gpm ()) ~space ~examples in
      let t0 = Sys.time () in
      let cost =
        match Ilp.Learner.learn task with
        | Some o -> string_of_int o.Ilp.Learner.cost
        | None -> "unsat (space too small)"
      in
      Fmt.pr "%-12d %-10.3f %-10s@."
        (Ilp.Hypothesis_space.size space)
        (Sys.time () -. t0) cost)
    (if quick then [ 2; 3 ] else [ 2; 3; 4 ]);
  (* ablation: set-cover engine vs general subset search *)
  Fmt.pr "-- ablation: set-cover engine vs general subset search (same task)@.";
  let space =
    Ilp.Hypothesis_space.generate
      (Workloads.Cav.modes ~max_body:2 ())
  in
  let small_examples =
    Workloads.Cav.examples_of (Workloads.Cav.sample ~seed:42 12)
  in
  let task = Ilp.Task.make ~gpm:(Workloads.Cav.gpm ()) ~space ~examples:small_examples in
  let t_fast = median_time (fun () -> Ilp.Learner.learn_constraints task) in
  let t_gen = median_time (fun () -> Ilp.Learner.learn_general task) in
  Fmt.pr "%-24s %.4fs@." "set-cover (default)" t_fast;
  Fmt.pr "%-24s %.4fs (%.0fx)@." "general subset search" t_gen
    (t_gen /. (t_fast +. 1e-9));
  (* statistical guidance (Section V-C): prune the space before searching *)
  Fmt.pr "-- statistical guidance: pruned hypothesis spaces (Section V-C)@.";
  Fmt.pr "%-16s %-12s %-10s %-10s@." "space" "candidates" "seconds" "cost";
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  let guided_examples =
    Workloads.Cav.examples_of (Workloads.Cav.sample ~seed:42 40)
  in
  let base_task =
    Ilp.Task.make ~gpm:(Workloads.Cav.gpm ()) ~space ~examples:guided_examples
  in
  List.iter
    (fun (label, task) ->
      let t0 = Sys.time () in
      let cost =
        match Ilp.Learner.learn task with
        | Some o -> string_of_int o.Ilp.Learner.cost
        | None -> "unsat"
      in
      Fmt.pr "%-16s %-12d %-10.3f %-10s@." label
        (Ilp.Hypothesis_space.size task.Ilp.Task.space)
        (Sys.time () -. t0) cost)
    [
      ("full", base_task);
      ("ranked", Ilp.Guidance.rank base_task);
      ("pruned 50%", Ilp.Guidance.prune ~fraction:0.5 base_task);
      ("pruned 25%", Ilp.Guidance.prune ~fraction:0.25 base_task);
      ("pruned 10%", Ilp.Guidance.prune ~fraction:0.10 base_task);
    ];
  (* ablation: membership checking with and without well-founded narrowing *)
  Fmt.pr "-- membership check cost (CAV decision, learned model)@.";
  let g =
    match
      Ilp.Asg_learning.learn ~gpm:(Workloads.Cav.gpm ()) ~space ~examples:small_examples ()
    with
    | Some l -> l.Ilp.Asg_learning.gpm
    | None -> Workloads.Cav.gpm ()
  in
  let s = List.hd (Workloads.Cav.sample ~seed:3 1) in
  let t =
    median_time (fun () ->
        Asg.Membership.accepts_in_context g
          ~context:(Workloads.Cav.to_context s) "accept")
  in
  Fmt.pr "%-24s %.5fs per decision@." "accepts_in_context" t

(* ---- PAR: parallel learner scaling over domains ---------------------- *)

(** Wall-clock of the full constraint learner at 1/2/4 domains on one
    task, with an outcome-identity check across all degrees, persisted
    as BENCH_par.json (schema bench-par/1). On a single-core container
    the domains timeshare, so the honest expectation there is ~1.0x (or
    slightly below, from scheduling overhead); the identity check is
    what must hold everywhere. *)
let par_fingerprint = function
  | None -> "unsat"
  | Some (o : Ilp.Learner.outcome) ->
    Printf.sprintf "cost=%d penalty=%d sacrificed=%d rules=[%s]"
      o.Ilp.Learner.cost o.Ilp.Learner.penalty
      (List.length o.Ilp.Learner.sacrificed)
      (String.concat "; "
         (List.map
            (fun (c : Ilp.Hypothesis_space.candidate) ->
              Printf.sprintf "pr%d %s" c.prod_id
                (Asg.Annotation.rule_to_string c.rule))
            o.Ilp.Learner.hypothesis))

(** Run the constraint learner on the CAV task ([n] examples) once per
    degree in [degrees]; returns [(domains, seconds, fingerprint)] per
    run. Shared by the [par] experiment and the bench gate's quick
    outcome-identity re-check. *)
let par_runs ~n ~degrees () =
  let examples = Workloads.Cav.examples_of (Workloads.Cav.sample ~seed:42 n) in
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  let task = Ilp.Task.make ~gpm:(Workloads.Cav.gpm ()) ~space ~examples in
  List.map
    (fun domains ->
      let pool = Par.create ~domains () in
      let t0 = Obs.now () in
      let outcome = Ilp.Learner.learn_constraints ~pool task in
      let dt = Obs.now () -. t0 in
      Par.shutdown pool;
      (domains, dt, par_fingerprint outcome))
    degrees

(** The gate's quick form of the [par] identity check: smaller task, two
    degrees, no timing table, no snapshot file. *)
let par_outcomes_identical () =
  match par_runs ~n:12 ~degrees:[ 1; 2 ] () with
  | (_, _, fp1) :: rest -> List.for_all (fun (_, _, fp) -> fp = fp1) rest
  | [] -> false

let par ~quick () =
  section "PAR  Parallel learner: wall-clock and outcome identity vs domains";
  let n = if quick then 24 else 48 in
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  let runs = par_runs ~n ~degrees:[ 1; 2; 4 ] () in
  let _, t1, fp1 = List.hd runs in
  let identical = List.for_all (fun (_, _, fp) -> fp = fp1) runs in
  Fmt.pr "%-10s %-12s %-12s %s@." "domains" "seconds" "speedup" "outcome";
  List.iter
    (fun (d, dt, fp) ->
      Fmt.pr "%-10d %-12.3f %-12.2f %s@." d dt
        (t1 /. (dt +. 1e-9))
        (if fp = fp1 then "identical" else "DIFFERENT"))
    runs;
  Fmt.pr "outcome at 1 domain: %s@." fp1;
  if not identical then
    Fmt.pr "WARNING: outcomes differ across domain counts@.";
  let oc = open_out "BENCH_par.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"bench-par/1\",\n\
    \  \"recommended_domains\": %d,\n\
    \  \"examples\": %d,\n\
    \  \"space\": %d,\n\
    \  \"seconds\": {%s},\n\
    \  \"speedup_vs_1\": {%s},\n\
    \  \"identical_outcome\": %b\n\
     }\n"
    (Domain.recommended_domain_count ())
    n
    (Ilp.Hypothesis_space.size space)
    (String.concat ", "
       (List.map (fun (d, dt, _) -> Printf.sprintf "\"%d\": %.3f" d dt) runs))
    (String.concat ", "
       (List.map
          (fun (d, dt, _) ->
            Printf.sprintf "\"%d\": %.2f" d (t1 /. (dt +. 1e-9)))
          runs))
    identical;
  close_out oc;
  Fmt.pr "snapshot written to BENCH_par.json@."

(* ---- SERVE: decision-serving throughput, cold vs warm vs batched ----- *)

(** The XACML request log as serving requests (permit/deny in preference
    order), shared by the [serve] experiment and the gate's quick
    differential re-check. *)
let serve_requests ~n ~seed () : Serve.Request.t list =
  Workloads.Xacml_logs.log ~seed ~n ()
  |> List.map (fun (r, _) ->
         Serve.Request.make
           ~context:(Policy.Request.to_context r)
           ~options:[ "permit"; "deny" ]
           ())

(** The gate's quick form of the serve differential: cached decisions
    must be bit-identical to the uncached reference on a small XACML
    workload, and the second pass must actually hit the memo. Returns
    (identical, decision-cache hit rate, ground-cache hit rate). *)
let serve_cached_identical () : bool * float * float =
  let gpm = Workloads.Xacml_logs.gpm () in
  let reqs = serve_requests ~n:12 ~seed:7 () in
  let uncached = List.map (Serve.decide_uncached gpm) reqs in
  let engine = Serve.create gpm in
  let pass () =
    List.map (fun r -> (Serve.decide engine r).Serve.Response.decision) reqs
  in
  let pass1 = pass () in
  let pass2 = pass () in
  let identical =
    List.for_all2 Serve.Decision.equal uncached pass1
    && List.for_all2 Serve.Decision.equal uncached pass2
  in
  let st = Serve.stats engine in
  (identical, Serve.hit_rate st.Serve.decisions, Serve.hit_rate st.Serve.grounds)

let serve ~quick () =
  section "SERVE  Decision serving: uncached vs cold vs warm vs batched";
  let n = if quick then 30 else 120 in
  let gpm = Workloads.Xacml_logs.gpm () in
  let reqs = serve_requests ~n ~seed:5 () in
  (* the cold workload: every context made unique by an inert sequence
     fact, so the decision memo can never hit and each request exercises
     the incremental path — parse-tree reuse, core-cache hit, per-request
     delta grounding *)
  let distinct_reqs =
    List.mapi
      (fun i (r : Serve.Request.t) ->
        Serve.Request.make
          ~context:
            (Asp.Program.with_facts r.Serve.Request.context
               [ Asp.Atom.make "req_seq" [ Asp.Term.int i ] ])
          ~options:r.Serve.Request.options ())
      reqs
  in
  let time f =
    let t0 = Obs.now () in
    let r = f () in
    (r, Obs.now () -. t0)
  in
  (* uncached: the cache-free reference path, one full membership
     evaluation per request (this was "cold" in bench-serve/1) *)
  let uncached, uncached_t =
    time (fun () -> List.map (Serve.decide_uncached gpm) reqs)
  in
  (* cold: a fresh engine over the distinct contexts — no request ever
     repeats, so this is the hot path the incremental grounder serves:
     memo misses, core hits, delta grounds *)
  let cold_engine = Serve.create gpm in
  let cold, cold_t =
    time (fun () ->
        List.map
          (fun r -> (Serve.decide cold_engine r).Serve.Response.decision)
          distinct_reqs)
  in
  let cold_reference = List.map (Serve.decide_uncached gpm) distinct_reqs in
  (* engine: the first pass fills both tiers, the second is the warm
     measurement (every request repeats, so it is all memo hits) *)
  let engine = Serve.create gpm in
  let pass () =
    List.map (fun r -> (Serve.decide engine r).Serve.Response.decision) reqs
  in
  let fill, fill_t = time pass in
  let warm, warm_t = time pass in
  (* batched warm serving across the domain pool *)
  let batch, batch_t =
    time (fun () ->
        List.map
          (fun (r : Serve.Response.t) -> r.Serve.Response.decision)
          (Serve.Batch.run engine reqs))
  in
  let identical =
    List.for_all2 Serve.Decision.equal uncached fill
    && List.for_all2 Serve.Decision.equal uncached warm
    && List.for_all2 Serve.Decision.equal uncached batch
    && List.for_all2 Serve.Decision.equal cold_reference cold
  in
  let st = Serve.stats engine in
  let cold_st = Serve.stats cold_engine in
  let per_req t = t /. float_of_int n *. 1e9 in
  let speedup t = uncached_t /. (t +. 1e-12) in
  let delta = cold_st.Serve.delta in
  let ns_per_ground =
    cold_t *. 1e9 /. float_of_int (max 1 delta.Serve.delta_grounds)
  in
  Fmt.pr "%-10s %-12s %-14s %s@." "mode" "seconds" "ns/request" "speedup";
  List.iter
    (fun (mode, t) ->
      Fmt.pr "%-10s %-12.4f %-14.0f %.1fx@." mode t (per_req t) (speedup t))
    [ ("uncached", uncached_t); ("cold", cold_t); ("fill", fill_t);
      ("warm", warm_t); ("batch", batch_t) ];
  Fmt.pr "decisions %s across all modes@."
    (if identical then "identical" else "DIFFERENT");
  Fmt.pr "decision cache: %d hit(s), %d miss(es), %d eviction(s), rate %.2f@."
    st.Serve.decisions.Serve.hits st.Serve.decisions.Serve.misses
    st.Serve.decisions.Serve.evictions
    (Serve.hit_rate st.Serve.decisions);
  Fmt.pr "ground cache:   %d hit(s), %d miss(es), %d eviction(s), rate %.2f@."
    st.Serve.grounds.Serve.hits st.Serve.grounds.Serve.misses
    st.Serve.grounds.Serve.evictions
    (Serve.hit_rate st.Serve.grounds);
  Fmt.pr
    "cold-path delta: %d ground(s), %d fact(s), %d rule(s) added, %d \
     fallback(s), %.0f ns/ground@."
    delta.Serve.delta_grounds delta.Serve.delta_facts
    delta.Serve.delta_rules delta.Serve.fallbacks ns_per_ground;
  if not identical then
    Fmt.pr "WARNING: cached decisions differ from the uncached reference@.";
  let tier name (ts : Serve.tier_stats) =
    Printf.sprintf
      "\"%s\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d, \
       \"hit_rate\": %.3f}"
      name ts.Serve.hits ts.Serve.misses ts.Serve.evictions
      (Serve.hit_rate ts)
  in
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"bench-serve/2\",\n\
    \  \"requests\": %d,\n\
    \  \"uncached_ns_per_req\": %.0f,\n\
    \  \"cold_ns_per_req\": %.0f,\n\
    \  \"fill_ns_per_req\": %.0f,\n\
    \  \"warm_ns_per_req\": %.0f,\n\
    \  \"batch_ns_per_req\": %.0f,\n\
    \  \"cold_speedup\": %.2f,\n\
    \  \"warm_speedup\": %.2f,\n\
    \  %s,\n\
    \  %s,\n\
    \  \"delta\": {\"grounds\": %d, \"facts\": %d, \"rules_added\": %d, \
     \"fallbacks\": %d, \"ns_per_ground\": %.0f},\n\
    \  \"identical_outcome\": %b\n\
     }\n"
    n (per_req uncached_t) (per_req cold_t) (per_req fill_t) (per_req warm_t)
    (per_req batch_t) (speedup cold_t) (speedup warm_t)
    (tier "decision_cache" st.Serve.decisions)
    (tier "ground_cache" st.Serve.grounds)
    delta.Serve.delta_grounds delta.Serve.delta_facts delta.Serve.delta_rules
    delta.Serve.fallbacks ns_per_ground identical;
  close_out oc;
  Fmt.pr "snapshot written to BENCH_serve.json@."

(* ---- SERVE2: sharded multi-tenant serving under a Zipf stream -------- *)

let serve2 ~quick () =
  section
    "SERVE2  Multi-tenant cluster: Zipf stream, coalescing, backpressure";
  let tenants = 4 in
  let n = if quick then 160 else 640 in
  let queue_depth = 32 in
  let pool_n = if quick then 12 else 24 in
  let gpm = Workloads.Xacml_logs.gpm () in
  let base = Array.of_list (serve_requests ~n:pool_n ~seed:5 ()) in
  let pool_size = Array.length base in
  (* Zipf over the context pool: P(rank k) ∝ 1/k, so a handful of hot
     contexts dominate the stream — the regime where per-shard memos
     and drain-window coalescing pay *)
  let weights = Array.init pool_size (fun i -> 1.0 /. float_of_int (i + 1)) in
  let total_w = Array.fold_left ( +. ) 0.0 weights in
  let st = Random.State.make [| 42 |] in
  let zipf () =
    let x = Random.State.float st total_w in
    let rec pick i acc =
      let acc = acc +. weights.(i) in
      if x < acc || i = pool_size - 1 then i else pick (i + 1) acc
    in
    pick 0 0.0
  in
  let names = Array.init tenants (fun i -> "t" ^ string_of_int i) in
  let reqs =
    List.init n (fun i ->
        let r = base.(zipf ()) in
        Serve.Request.make
          ~tenant:names.(i mod tenants)
          ~context:r.Serve.Request.context
          ~options:r.Serve.Request.options ())
  in
  let cluster =
    Serve.Cluster.create ~queue_depth
      ~tenants:(Array.to_list (Array.map (fun t -> (t, gpm)) names))
      ()
  in
  let time f =
    let t0 = Obs.now () in
    let r = f () in
    (r, Obs.now () -. t0)
  in
  let outcomes, cluster_t = time (fun () -> Serve.Cluster.run cluster reqs) in
  let served =
    List.map
      (function
        | Serve.Cluster.Served r -> r
        | Serve.Cluster.Rejected reason ->
          Fmt.failwith "run rejected a known tenant: %s"
            (Serve.Cluster.reject_reason_to_string reason))
      outcomes
  in
  let hist = Obs.Histogram.make "bench.serve2.latency" in
  List.iter
    (fun (r : Serve.Response.t) ->
      Obs.Histogram.observe hist r.Serve.Response.latency)
    served;
  let p50 = Obs.Histogram.quantile hist 0.50 in
  let p99 = Obs.Histogram.quantile hist 0.99 in
  let rps = float_of_int n /. (cluster_t +. 1e-12) in
  (* the sequential single-shard reference: one engine serves the same
     stream in input order — the outcome oracle and the speed baseline *)
  let engine = Serve.create gpm in
  let seq, seq_t =
    time (fun () ->
        List.map (fun r -> (Serve.decide engine r).Serve.Response.decision)
          reqs)
  in
  let identical =
    List.for_all2 Serve.Decision.equal seq
      (List.map
         (fun (r : Serve.Response.t) -> r.Serve.Response.decision)
         served)
  in
  let routed =
    List.for_all2
      (fun (req : Serve.Request.t) (r : Serve.Response.t) ->
        r.Serve.Response.shard = req.Serve.Request.tenant)
      reqs served
  in
  let coalesced = Serve.Cluster.coalesced cluster in
  (* backpressure probe on a throwaway cluster: a depth-2 queue must
     reject exactly the overflow, explicitly *)
  let rejected_on_overfill =
    let c2 = Serve.Cluster.create ~queue_depth:2 ~tenants:[ ("solo", gpm) ] () in
    let tks =
      List.init 4 (fun i ->
          Serve.Cluster.submit c2
            (Serve.Request.make ~tenant:"solo"
               ~context:base.(i mod pool_size).Serve.Request.context
               ~options:base.(i mod pool_size).Serve.Request.options ()))
    in
    ignore (Serve.Cluster.drain c2);
    List.length
      (List.filter
         (fun tk ->
           match Serve.Cluster.poll tk with
           | Some (Serve.Cluster.Rejected Serve.Cluster.Queue_full) -> true
           | _ -> false)
         tks)
  in
  (* cross-tenant invalidation audit: swapping t0's model must leave
     every other shard's decision memo untouched *)
  let other_memo_entries () =
    List.filter_map
      (fun (tenant, st) ->
        if tenant = "t0" then None
        else Some st.Serve.decisions.Serve.entries)
      (Serve.Cluster.stats cluster)
  in
  let before = other_memo_entries () in
  Serve.Cluster.set_gpm cluster ~tenant:"t0"
    (Asg.Gpm.with_context gpm Asp.Program.empty);
  let after = other_memo_entries () in
  let cross_tenant_invalidations =
    List.fold_left2 (fun acc b a -> acc + max 0 (b - a)) 0 before after
  in
  let shard_stats = Serve.Cluster.stats cluster in
  Fmt.pr "%d requests, %d tenants, queue depth %d, pool of %d contexts@." n
    tenants queue_depth pool_size;
  Fmt.pr "cluster: %.3f s (%.0f req/s)  sequential single shard: %.3f s@."
    cluster_t rps seq_t;
  Fmt.pr "latency p50 %.0f us, p99 %.0f us@." (p50 *. 1e6) (p99 *. 1e6);
  Fmt.pr "coalesced %d, overfill rejected %d, cross-tenant invalidations %d@."
    coalesced rejected_on_overfill cross_tenant_invalidations;
  Fmt.pr "%-10s %-16s %s@." "shard" "decision rate" "ground rate";
  List.iter
    (fun (tenant, st) ->
      Fmt.pr "%-10s %-16.2f %.2f@." tenant
        (Serve.hit_rate st.Serve.decisions)
        (Serve.hit_rate st.Serve.grounds))
    shard_stats;
  Fmt.pr "decisions %s the sequential reference; provenance %s@."
    (if identical then "identical to" else "DIFFERENT from")
    (if routed then "matches every tenant" else "MISROUTED");
  if not identical then
    Fmt.pr "WARNING: cluster decisions differ from the single-shard path@.";
  let oc = open_out "BENCH_serve2.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"bench-serve2/1\",\n\
    \  \"tenants\": %d,\n\
    \  \"queue_depth\": %d,\n\
    \  \"requests\": %d,\n\
    \  \"context_pool\": %d,\n\
    \  \"requests_per_sec\": %.0f,\n\
    \  \"p50_s\": %.6f,\n\
    \  \"p99_s\": %.6f,\n\
    \  \"shards\": {%s},\n\
    \  \"coalesced\": %d,\n\
    \  \"rejected_on_overfill\": %d,\n\
    \  \"cross_tenant_invalidations\": %d,\n\
    \  \"shard_provenance\": %b,\n\
    \  \"identical_outcome\": %b\n\
     }\n"
    tenants queue_depth n pool_size rps p50 p99
    (String.concat ", "
       (List.map
          (fun (tenant, st) ->
            Printf.sprintf
              "\"%s\": {\"decision_hit_rate\": %.3f, \"ground_hit_rate\": \
               %.3f}"
              tenant
              (Serve.hit_rate st.Serve.decisions)
              (Serve.hit_rate st.Serve.grounds))
          shard_stats))
    coalesced rejected_on_overfill cross_tenant_invalidations routed identical;
  close_out oc;
  Fmt.pr "snapshot written to BENCH_serve2.json@."

(* ---- DRIFT: policy-health drift replay ------------------------------- *)

(* zero every health signal and the event ring so each replay phase
   measures only its own stream *)
let reset_health () =
  List.iter Obs.Health.reset (Obs.Health.all ());
  Obs.Health.clear_events ()

(* the gate's live counterpart of the committed delta.ns_per_ground:
   serve a small distinct-context cold workload (all delta grounds, no
   memo hits) and report ns per delta ground, min of [runs] *)
let serve_ground_ns ?(n = 30) ?(runs = 3) () : float =
  let gpm = Workloads.Xacml_logs.gpm () in
  let reqs =
    serve_requests ~n ~seed:5 ()
    |> List.mapi (fun i (r : Serve.Request.t) ->
           Serve.Request.make
             ~context:
               (Asp.Program.with_facts r.Serve.Request.context
                  [ Asp.Atom.make "req_seq" [ Asp.Term.int i ] ])
             ~options:r.Serve.Request.options ())
  in
  let one () =
    let engine = Serve.create gpm in
    let t0 = Obs.now () in
    List.iter (fun r -> ignore (Serve.decide engine r)) reqs;
    let t = Obs.now () -. t0 in
    let d = (Serve.stats engine).Serve.delta in
    t *. 1e9 /. float_of_int (max 1 d.Serve.delta_grounds)
  in
  List.fold_left
    (fun acc _ -> Float.min acc (one ()))
    (one ())
    (List.init (runs - 1) Fun.id)

(* one closed-loop replay over the XACML log: [pretrain] requests to
   settle the learner, a health reset, then [n1] stationary requests
   and [n2] requests with the ground truth inverted ([n2 = 0] is the
   stationary control). Returns the post-reset (chosen, compliant)
   stream and the adaptation count. *)
let drift_replay ~use_serve ~pretrain ~n1 ~n2 () :
    (string * bool) list * int =
  let spec : Agenp.Prep.pbms_spec =
    {
      Agenp.Prep.grammar_text =
        Asg.Asg_parser.render (Workloads.Xacml_logs.gpm ());
      global_constraints = [];
    }
  in
  let space = Ilp.Hypothesis_space.generate (Workloads.Xacml_logs.modes ()) in
  let truth = ref Policy.Decision.Permit in
  let env : Agenp.Ams.environment =
    {
      Agenp.Ams.options = [ "permit"; "deny" ];
      oracle =
        (fun _context opt ->
          match opt with
          | "deny" -> true (* denying is always safe *)
          | "permit" -> Policy.Decision.equal !truth Policy.Decision.Permit
          | _ -> false);
      audit_rate = 0.0;
    }
  in
  let ams = Agenp.Ams.create ~name:"drift" ~seed:1 ~spec ~space env in
  if use_serve then
    Agenp.Ams.attach_engine ams
      (Serve.Engine (Serve.create (Agenp.Ams.gpm ams)));
  let log = Workloads.Xacml_logs.log ~seed:11 ~n:(pretrain + n1 + n2) () in
  let flip = function
    | Policy.Decision.Permit -> Policy.Decision.Deny
    | Policy.Decision.Deny -> Policy.Decision.Permit
    | d -> d
  in
  let outcomes = ref [] in
  List.iteri
    (fun i (r, d) ->
      if i = pretrain then reset_health ();
      truth := (if i >= pretrain + n1 then flip d else d);
      let rc = Agenp.Ams.handle_request ams (Policy.Request.to_context r) in
      if i >= pretrain then
        outcomes :=
          (rc.Agenp.Pep.decision.Serve.Decision.chosen, Agenp.Pep.compliant rc)
          :: !outcomes)
    log;
  (List.rev !outcomes, Agenp.Ams.relearn_count ams)

let rate_shift_events () =
  List.filter
    (fun (e : Obs.Health.event) -> e.Obs.Health.ev_kind = "rate_shift")
    (Obs.Health.events ())

let drift ~quick () =
  section "DRIFT  Policy-health drift replay: detection latency and recovery";
  let pretrain = if quick then 30 else 40 in
  let n1 = if quick then 20 else 25 in
  let n2 = if quick then 35 else 45 in
  let tail = 15 in
  (* stationary control: same length, ground truth never mutates *)
  reset_health ();
  let _, _ = drift_replay ~use_serve:true ~pretrain ~n1:(n1 + n2) ~n2:0 () in
  let false_alarms = List.length (rate_shift_events ()) in
  (* drifted runs: uncached reference first, then the measured serve run *)
  reset_health ();
  let ref_outcomes, _ = drift_replay ~use_serve:false ~pretrain ~n1 ~n2 () in
  reset_health ();
  let outcomes, adaptations = drift_replay ~use_serve:true ~pretrain ~n1 ~n2 () in
  let identical =
    List.length ref_outcomes = List.length outcomes
    && List.for_all2
         (fun (a, _) (b, _) -> String.equal a b)
         ref_outcomes outcomes
  in
  let alarms =
    List.filter
      (fun (e : Obs.Health.event) ->
        e.Obs.Health.ev_signal = "pep.noncompliance"
        && e.Obs.Health.ev_observations > n1)
      (rate_shift_events ())
  in
  let detected = alarms <> [] in
  let detection_latency =
    match alarms with
    | e :: _ -> e.Obs.Health.ev_observations - n1
    | [] -> -1
  in
  let recovery_accuracy =
    let rest = List.filteri (fun i _ -> i >= n1 + n2 - tail) outcomes in
    match rest with
    | [] -> 0.0
    | _ ->
      float_of_int (List.length (List.filter snd rest))
      /. float_of_int (List.length rest)
  in
  Fmt.pr "stationary control: %d request(s), %d false alarm(s)@." (n1 + n2)
    false_alarms;
  Fmt.pr
    "drifted stream: mutation at request %d, %s (latency %d request(s), %d \
     alarm(s))@."
    n1
    (if detected then "detected" else "NOT DETECTED")
    detection_latency (List.length alarms);
  Fmt.pr "adaptations %d, recovery accuracy %.3f over last %d request(s)@."
    adaptations recovery_accuracy tail;
  Fmt.pr "decisions %s with and without the serving engine@."
    (if identical then "identical" else "DIFFERENT");
  let oc = open_out "BENCH_drift.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"bench-drift/1\",\n\
    \  \"pretrain_requests\": %d,\n\
    \  \"stationary_requests\": %d,\n\
    \  \"post_mutation_requests\": %d,\n\
    \  \"false_alarms_on_stationary\": %d,\n\
    \  \"detected\": %b,\n\
    \  \"detection_latency_requests\": %d,\n\
    \  \"detector_alarms\": %d,\n\
    \  \"adaptations\": %d,\n\
    \  \"recovery_accuracy\": %.3f,\n\
    \  \"identical_outcome\": %b\n\
     }\n"
    pretrain n1 n2 false_alarms detected detection_latency
    (List.length alarms) adaptations recovery_accuracy identical;
  close_out oc;
  Fmt.pr "snapshot written to BENCH_drift.json@."
